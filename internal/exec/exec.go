// Package exec defines the execution model shared by the two engines that
// can run a block program: the deterministic discrete-event simulator
// (internal/sim, the VisibleSim substitute of §V-E) and the asynchronous
// goroutine runtime (internal/runtime). A per-block program — the paper
// calls it a BlockCode — is written once against these interfaces and runs
// unchanged on either engine.
package exec

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/msg"
	"repro/internal/rules"
)

// Env is a block's view of its host hardware: identity, registers, the four
// side ports, sensors, motion actuators, and the rule library stored in its
// memory (the XML capabilities of Fig. 7). Engines guarantee that all
// callbacks of one block are serialised, so a BlockCode never needs locks
// around its own state.
type Env interface {
	// ID returns the host block's identifier.
	ID() lattice.BlockID
	// Position returns the block's current cell. Blocks "store in registers
	// their position on the surface" (Assumption 2); engines keep the
	// register current as the block moves.
	Position() geom.Vec
	// Input returns the position of the input cell I (where the Root sits).
	Input() geom.Vec
	// Output returns the position of the output cell O, known to all blocks
	// (Assumption 2).
	Output() geom.Vec

	// Neighbors returns the Neighbor Table NT: the adjacent block on each
	// lateral side, or lattice.None (§V-B).
	Neighbors() [geom.NumDirs]lattice.BlockID
	// Send transmits a message through the port facing the given adjacent
	// block. Sending to a non-adjacent block fails: ports are physical
	// contacts (§II).
	Send(to lattice.BlockID, m msg.Message) error

	// Sense reports the occupancy of a cell within the sensing window
	// (Chebyshev distance <= SensingRadius from the block). Side sensors
	// give distance-1 cells; rounds of neighbour information exchange
	// extend the window far enough to evaluate every library rule anchored
	// so that this block is one of its movers (twice the largest rule
	// radius: distance 2 for the paper's 3x3 rules, 4 with the 5x5
	// chain-carry extension). Cells outside the window panic: the hardware
	// has no way to observe them.
	Sense(v geom.Vec) bool
	// SensingRadius returns the window radius (2 x the max rule radius).
	SensingRadius() int

	// CutVertex reports whether this block is currently an articulation
	// point of the ensemble: whether its lone departure would split the
	// surface into disconnected pieces. In hardware this is the
	// electro-permanent latching interlock's "load-bearing" signal — the
	// same layer that refuses disconnecting motions (Remark 1) can tell a
	// block it is one. In the reproduction both engines answer it from the
	// lattice's incremental articulation cache. Blocks include the bit in
	// their election bids so the Root's parallel-moves interference filter
	// can admit extra winners without risking a connectivity interaction.
	CutVertex() bool

	// ValidateMoveSet checks an ordered list of planned single-block
	// displacements as one batched what-if against the current surface and
	// returns the length of the longest valid prefix (see
	// lattice.Surface.ValidateMoveSet). The Root's wave admission uses it to
	// test whether overlapping same-direction candidates commute when applied
	// in stamp order; every admitted hop is still validated live by Move, so
	// the answer is a planning verdict, not the safety guard.
	ValidateMoveSet(moves []lattice.PlannedMove) int

	// Library returns the motion capabilities stored in the block.
	Library() *rules.Library
	// Move asks the actuators to execute a rule application in which this
	// block is a mover. The physical layer validates it against the full
	// surface (including the global connectivity guard of Remark 1) and
	// executes it atomically; helpers move in the same instant.
	Move(app rules.Application) error

	// Rand returns this block's deterministic random source (seeded from
	// the engine seed and the block id); the Root uses it for the paper's
	// random tie-break among equally distant blocks.
	Rand() *rand.Rand
	// Logf emits a debug line tagged with the block id, the analogue of
	// VisibleSim's per-block debugging text (§V-E). Engines may discard it.
	Logf(format string, args ...any)
}

// BlockCode is the per-block program, named after VisibleSim's concept of
// the same name (§V-E). Engines call the hooks with the block's Env; hooks
// of a single block never run concurrently.
type BlockCode interface {
	// OnStart runs once when the system boots, before any message flows.
	OnStart(env Env)
	// OnMessage runs for each message popped from the block's reception
	// buffers (Fig. 8).
	OnMessage(env Env, from lattice.BlockID, m msg.Message)
	// OnMoved runs after the host block was physically displaced, whether
	// as the initiating mover or as a carried helper.
	OnMoved(env Env, from, to geom.Vec)
	// OnNeighborhoodChanged runs when any cell inside the block's sensing
	// window changed occupancy without the block itself moving (a sensor
	// interrupt). The block may re-evaluate its mobility.
	OnNeighborhoodChanged(env Env)
}

// CodeFactory builds the BlockCode for a block; engines call it once per
// block at boot.
type CodeFactory func(id lattice.BlockID) BlockCode

// Termination is how the algorithm reports completion to the engine and the
// harness: the Root calls Finish exactly once.
type Termination interface {
	// Finish reports whether the reconfiguration succeeded (a block
	// occupies O and the path stands) after the given number of election
	// rounds.
	Finish(success bool, rounds int)
}

// Metrics is the engine-level measurement snapshot every execution backend
// reports after a run. It is the common denominator of the discrete-event
// simulator and the goroutine runtime, so the session layer (core.Engine)
// can fill the unified Result without knowing which backend ran.
type Metrics struct {
	// MessagesSent counts Send calls accepted by ports.
	MessagesSent uint64
	// MessagesDelivered counts messages handed to BlockCodes.
	MessagesDelivered uint64
	// MessagesDropped counts messages lost to buffer or channel overflow,
	// or to a receiver that left the surface while the message was in flight.
	MessagesDropped uint64
	// Events counts executed engine events: scheduler events on the DES,
	// per-block dispatched events (start, message, moved, neighborhood) on
	// the goroutine runtime.
	Events uint64
	// VirtualTime is the run's completion time in the backend's own clock:
	// virtual ticks for the DES, elapsed wall-clock nanoseconds for the
	// goroutine runtime.
	VirtualTime int64
}
