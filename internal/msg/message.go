// Package msg defines the messages blocks exchange over their four lateral
// communication ports and the per-side reception buffers of the paper's
// memory organisation (§V-B, Figs. 8–9). The election messages follow the
// paper's formats:
//
//	Activate[Father, Son, O, ShortestDistance, IDshortest]
//	Ack[Son, Father, ShortestDistance, IDshortest]
//
// plus the Select message of the second phase, its acknowledgement, and the
// round-completion floods (MoveDone, Finished) that let the Root sequence
// Algorithm 1's iterations. For parallel-moves runs an Ack additionally
// carries the subtree's top-K candidate list (up to MaxBatch entries).
// Messages marshal to a variable-length wire format bounded by MaxWireSize:
// Smart Blocks have small memories, so the codec keeps every message
// byte-bounded.
package msg

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/lattice"
)

// Type discriminates the message kinds.
type Type uint8

const (
	// TypeActivate engages a neighbour in the Dijkstra–Scholten diffusing
	// computation of the current election (paper §V-C).
	TypeActivate Type = iota + 1
	// TypeAck acknowledges an activation. First-activation acks carry the
	// subtree's best (distance, id); redundant-activation acks are neutral.
	TypeAck
	// TypeSelect is routed from the Root down the father/son tree to the
	// elected block.
	TypeSelect
	// TypeSelectAck is the elected block's acknowledgement, routed back up
	// to the Root; its reception ends the distributed election.
	TypeSelectAck
	// TypeMoveDone is flooded by the elected block after its hop attempt,
	// carrying the outcome; the Root starts the next iteration on reception.
	TypeMoveDone
	// TypeFinished is flooded by the Root when Algorithm 1 terminates.
	TypeFinished

	numTypes = 6
)

var typeNames = [numTypes + 1]string{
	"invalid", "activate", "ack", "select", "select-ack", "move-done", "finished",
}

// Valid reports whether t is a known message type.
func (t Type) Valid() bool { return t >= TypeActivate && t <= TypeFinished }

// String implements fmt.Stringer.
func (t Type) String() string {
	if !t.Valid() {
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
	return typeNames[t]
}

// InfiniteDistance encodes the paper's d = +inf (eqs. (8)–(9)): blocks that
// are aligned with the output or cannot move are never elected.
const InfiniteDistance int32 = math.MaxInt32

// Tier selects the move classes an election considers; see core.Config.
type Tier uint8

const (
	// TierDecreasing elects blocks with a strictly distance-decreasing move
	// (the paper's normal case: the hop "tends to diminish the distance").
	TierDecreasing Tier = 0
	// TierRetreat additionally admits one-step retreats (distance d+1; on
	// the Manhattan grid a hop always changes d by exactly one, so d+1 is
	// the only alternative to d-1). The Root escalates to this tier only
	// when a decreasing round elects nobody — the latitude behind the
	// paper's "tends to diminish the distance".
	TierRetreat Tier = 1
	// TierDesperate additionally lets blocks ignore their no-return memory:
	// the last escalation before the Root declares a blocking. Undoing a
	// previous hop is better than global deadlock.
	TierDesperate Tier = 2
)

// MaxBatch is the largest top-K candidate list an Ack can carry, and with it
// the largest admissible core.WithParallelMoves width: the wire format
// reserves exactly MaxBatch candidate slots so messages stay byte-bounded
// (Smart Blocks have small memories).
const MaxBatch = 16

// Footprint is the cell set a planned move writes, carried in a candidate's
// bid so the Root's admission filter can reason about interference exactly
// instead of by sensing-window distance. It reuses the bitboard layout of the
// compiled rule system: a square window of side 2*Radius+1 centred on Anchor,
// bit row*size+col in display order (row 0 = north). Write holds the cells
// whose occupancy the move changes (the From/To cells of every elementary
// step). Read cells need no mask: a proposer replans over its whole sensing
// window at execution time, so the interference test is writes-versus-window
// (TouchesWindow), not writes-versus-sensed-subset.
type Footprint struct {
	Anchor geom.Vec
	Radius uint8
	Write  uint64
}

// Empty reports whether the footprint carries no cells (no planned move, or
// a rule outside the compiled bitboard form).
func (f Footprint) Empty() bool { return f.Write == 0 }

// covers reports whether absolute cell v is a set bit of mask within f's
// window.
func (f Footprint) covers(mask uint64, v geom.Vec) bool {
	r := int(f.Radius)
	size := 2*r + 1
	col := v.X - f.Anchor.X + r
	row := f.Anchor.Y + r - v.Y
	if col < 0 || col >= size || row < 0 || row >= size {
		return false
	}
	return mask>>(uint(row*size+col))&1 == 1
}

// overlapMasks reports whether any absolute cell set in (a, am) is also set
// in (b, bm). It iterates the set bits of one mask and tests membership in
// the other, so the cost is O(popcount) regardless of window alignment.
func overlapMasks(a Footprint, am uint64, b Footprint, bm uint64) bool {
	if am == 0 || bm == 0 {
		return false
	}
	r := int(a.Radius)
	size := 2*r + 1
	for m := am; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		cell := geom.V(a.Anchor.X+i%size-r, a.Anchor.Y+r-i/size)
		if b.covers(bm, cell) {
			return true
		}
	}
	return false
}

// WritesOverlap reports whether f and o both mutate at least one common
// cell — the hard conflict no admission tier can order around.
func (f Footprint) WritesOverlap(o Footprint) bool {
	return overlapMasks(f, f.Write, o, o.Write)
}

// TouchesWindow reports whether any written cell of f lies within Chebyshev
// distance radius of center — that is, whether executing f's move would
// change a cell inside the sensing window of a block at center. Two planned
// moves commute unconditionally exactly when neither touches the other
// proposer's window: each proposer then replans over an unchanged window at
// execution time and reproduces its bid.
func (f Footprint) TouchesWindow(center geom.Vec, radius int) bool {
	if f.Write == 0 {
		return false
	}
	r := int(f.Radius)
	size := 2*r + 1
	for m := f.Write; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		cell := geom.V(f.Anchor.X+i%size-r, f.Anchor.Y+r-i/size)
		if cell.Chebyshev(center) <= radius {
			return true
		}
	}
	return false
}

// Cand is one entry of the top-K candidate list an Ack carries when the run
// elects batches of blocks (the parallel-moves extension of §V-C): the
// block's bid plus the facts the Root's admission ladder needs — the
// bidder's position, whether the bidder is currently a cut vertex of the
// ensemble (its lone departure would split the surface; see
// exec.Env.CutVertex), the planned destination To and the write footprint Fp
// of the planned move. In a GO flood the Root reuses the entry to carry each
// winner's wave ordering stamp (Wave; 0 = unordered — no other admitted
// winner's writes touch this winner's sensing window or vice versa; s >= 1 —
// the s-th ordered wave member, which hops only after every lower-stamped
// member reported MoveDone).
type Cand struct {
	ID       lattice.BlockID
	Distance int32
	Pos      geom.Vec
	Cut      bool
	To       geom.Vec
	Wave     uint8
	Fp       Footprint
}

// Message is the single wire format for all block-to-block traffic. Unused
// fields are zero; which fields are meaningful depends on Type.
type Message struct {
	Type  Type
	Round uint32 // election iteration k of Algorithm 1
	Tier  Tier   // move tier of this election round

	// Election fields (Activate/Ack/Select/SelectAck).
	Father           lattice.BlockID // sender for Activate; destination for Ack
	Son              lattice.BlockID // destination for Activate; sender for Ack
	Output           geom.Vec        // position of O (Activate; Assumption 2 state)
	ShortestDistance int32           // current best distance to O
	IDShortest       lattice.BlockID // block achieving ShortestDistance

	// Top-K candidate list (Ack, parallel-moves runs): the subtree's best
	// NumCands candidates in election order. NumCands 0 means a neutral or
	// serial-protocol ack; the legacy ShortestDistance/IDShortest pair always
	// mirrors Cands[0] when NumCands > 0.
	NumCands uint8
	Cands    [MaxBatch]Cand

	// Flood fields (MoveDone/Finished).
	Mover    lattice.BlockID // block that moved (MoveDone)
	From, To geom.Vec        // executed hop (MoveDone)
	Success  bool            // MoveDone: hop executed; Finished: path built
}

// String implements fmt.Stringer with a compact per-type rendering.
func (m Message) String() string {
	switch m.Type {
	case TypeActivate:
		return fmt.Sprintf("Activate[r%d %d->%d O=%s d=%s id=%d]",
			m.Round, m.Father, m.Son, m.Output, distString(m.ShortestDistance), m.IDShortest)
	case TypeAck:
		if m.NumCands > 0 {
			return fmt.Sprintf("Ack[r%d %d->%d d=%s id=%d cands=%d]",
				m.Round, m.Son, m.Father, distString(m.ShortestDistance), m.IDShortest, m.NumCands)
		}
		return fmt.Sprintf("Ack[r%d %d->%d d=%s id=%d]",
			m.Round, m.Son, m.Father, distString(m.ShortestDistance), m.IDShortest)
	case TypeSelect:
		return fmt.Sprintf("Select[r%d elected=%d]", m.Round, m.IDShortest)
	case TypeSelectAck:
		return fmt.Sprintf("SelectAck[r%d elected=%d]", m.Round, m.IDShortest)
	case TypeMoveDone:
		return fmt.Sprintf("MoveDone[r%d block=%d %s->%s ok=%t]",
			m.Round, m.Mover, m.From, m.To, m.Success)
	case TypeFinished:
		return fmt.Sprintf("Finished[r%d ok=%t]", m.Round, m.Success)
	}
	return fmt.Sprintf("Message{%v}", m.Type)
}

func distString(d int32) string {
	if d == InfiniteDistance {
		return "inf"
	}
	return fmt.Sprintf("%d", d)
}

// BaseWireSize is the encoded size of a Message carrying no candidate list:
// the fixed 44-byte header of the serial protocol plus the NumCands count
// byte. Each candidate entry adds CandWireSize bytes.
const (
	BaseWireSize = 45
	CandWireSize = 31
	// MaxWireSize bounds every encoded message: a full MaxBatch candidate
	// list on top of the base header.
	MaxWireSize = BaseWireSize + MaxBatch*CandWireSize
	// WireVersion stamps every encoded frame (header byte 3, zero — and
	// unchecked — before footprints were added). Version 2 widened the
	// candidate entry with the planned destination, wave stamp and footprint.
	WireVersion = 2
)

// WireSize returns the encoded size of m in bytes: the base header plus the
// candidate list actually carried. Every message is bounded by MaxWireSize.
func (m Message) WireSize() int { return BaseWireSize + int(m.NumCands)*CandWireSize }

// MarshalBinary encodes m into the variable-length wire format: the 44-byte
// serial header, the candidate count, then NumCands packed candidate entries.
func (m Message) MarshalBinary() ([]byte, error) {
	if !m.Type.Valid() {
		return nil, fmt.Errorf("msg: cannot marshal invalid type %d", m.Type)
	}
	if int(m.NumCands) > MaxBatch {
		return nil, fmt.Errorf("msg: candidate list of %d exceeds MaxBatch %d", m.NumCands, MaxBatch)
	}
	b := make([]byte, m.WireSize())
	b[0] = byte(m.Type)
	b[1] = byte(m.Tier)
	if m.Success {
		b[2] = 1
	}
	b[3] = WireVersion
	binary.LittleEndian.PutUint32(b[4:], m.Round)
	binary.LittleEndian.PutUint32(b[8:], uint32(m.Father))
	binary.LittleEndian.PutUint32(b[12:], uint32(m.Son))
	putVec(b[16:], m.Output)
	binary.LittleEndian.PutUint32(b[24:], uint32(m.ShortestDistance))
	binary.LittleEndian.PutUint32(b[28:], uint32(m.IDShortest))
	binary.LittleEndian.PutUint32(b[32:], uint32(m.Mover))
	putVec(b[36:], m.From)
	putVec(b[40:], m.To)
	b[44] = m.NumCands
	for i := 0; i < int(m.NumCands); i++ {
		c := m.Cands[i]
		off := BaseWireSize + i*CandWireSize
		binary.LittleEndian.PutUint32(b[off:], uint32(c.ID))
		binary.LittleEndian.PutUint32(b[off+4:], uint32(c.Distance))
		putVec(b[off+8:], c.Pos)
		if c.Cut {
			b[off+12] = 1
		}
		putVec(b[off+13:], c.To)
		b[off+17] = c.Wave
		putVec(b[off+18:], c.Fp.Anchor)
		b[off+22] = c.Fp.Radius
		binary.LittleEndian.PutUint64(b[off+23:], c.Fp.Write)
	}
	return b, nil
}

// UnmarshalBinary decodes the wire format.
func (m *Message) UnmarshalBinary(data []byte) error {
	if len(data) < BaseWireSize {
		return fmt.Errorf("msg: wire size %d below the %d-byte base", len(data), BaseWireSize)
	}
	t := Type(data[0])
	if !t.Valid() {
		return fmt.Errorf("msg: invalid type %d on the wire", data[0])
	}
	if data[3] != WireVersion {
		return fmt.Errorf("msg: wire version %d, want %d", data[3], WireVersion)
	}
	n := int(data[44])
	if n > MaxBatch {
		return fmt.Errorf("msg: candidate count %d exceeds MaxBatch %d", n, MaxBatch)
	}
	if want := BaseWireSize + n*CandWireSize; len(data) != want {
		return fmt.Errorf("msg: wire size %d, want %d for %d candidates", len(data), want, n)
	}
	*m = Message{}
	m.Type = t
	m.Tier = Tier(data[1])
	m.Success = data[2] == 1
	m.Round = binary.LittleEndian.Uint32(data[4:])
	m.Father = lattice.BlockID(binary.LittleEndian.Uint32(data[8:]))
	m.Son = lattice.BlockID(binary.LittleEndian.Uint32(data[12:]))
	m.Output = getVec(data[16:])
	m.ShortestDistance = int32(binary.LittleEndian.Uint32(data[24:]))
	m.IDShortest = lattice.BlockID(binary.LittleEndian.Uint32(data[28:]))
	m.Mover = lattice.BlockID(binary.LittleEndian.Uint32(data[32:]))
	m.From = getVec(data[36:])
	m.To = getVec(data[40:])
	m.NumCands = uint8(n)
	for i := 0; i < n; i++ {
		off := BaseWireSize + i*CandWireSize
		m.Cands[i] = Cand{
			ID:       lattice.BlockID(binary.LittleEndian.Uint32(data[off:])),
			Distance: int32(binary.LittleEndian.Uint32(data[off+4:])),
			Pos:      getVec(data[off+8:]),
			Cut:      data[off+12] == 1,
			To:       getVec(data[off+13:]),
			Wave:     data[off+17],
			Fp: Footprint{
				Anchor: getVec(data[off+18:]),
				Radius: data[off+22],
				Write:  binary.LittleEndian.Uint64(data[off+23:]),
			},
		}
	}
	return nil
}

// Positions fit in int16 each: the paper's surfaces are centimetre-scale
// grids of at most a few thousand cells per side.
func putVec(b []byte, v geom.Vec) {
	binary.LittleEndian.PutUint16(b[0:], uint16(int16(v.X)))
	binary.LittleEndian.PutUint16(b[2:], uint16(int16(v.Y)))
}

func getVec(b []byte) geom.Vec {
	return geom.V(int(int16(binary.LittleEndian.Uint16(b[0:]))),
		int(int16(binary.LittleEndian.Uint16(b[2:]))))
}
