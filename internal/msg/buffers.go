package msg

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lattice"
)

// Inbound is a received message together with the sender and the side it
// arrived on.
type Inbound struct {
	From lattice.BlockID
	Side geom.Dir
	Msg  Message
}

// Buffers is the memory organisation for data communication of Fig. 8: one
// dedicated FIFO reception buffer per lateral side of the block ("data sent
// by neighbors are stored in a dedicated buffer, e.g., top buffer for the
// neighbor that is above"). Each buffer has a fixed capacity, reflecting the
// small memories of MEMS blocks; pushing into a full buffer fails and the
// message is lost, which engines surface as a drop.
//
// Buffers is not safe for concurrent use; the goroutine runtime guards each
// block's buffers with that block's own mailbox goroutine.
type Buffers struct {
	cap   int
	sides [geom.NumDirs][]Inbound
	drops int
	// rr is the side the next Pop starts scanning from, giving round-robin
	// service so one chatty side cannot starve the others.
	rr geom.Dir
}

// DefaultBufferCap is the per-side capacity used by the engines.
const DefaultBufferCap = 64

// NewBuffers returns per-side buffers with the given per-side capacity.
func NewBuffers(capacity int) (*Buffers, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("msg: buffer capacity must be positive, got %d", capacity)
	}
	return &Buffers{cap: capacity}, nil
}

// Push stores a message arriving on the given side. It reports false and
// counts a drop when the side's buffer is full.
func (b *Buffers) Push(in Inbound) bool {
	if !in.Side.Valid() {
		b.drops++
		return false
	}
	q := b.sides[in.Side]
	if len(q) >= b.cap {
		b.drops++
		return false
	}
	b.sides[in.Side] = append(q, in)
	return true
}

// Pop removes and returns the next message, serving the four sides
// round-robin. It reports false when all buffers are empty.
func (b *Buffers) Pop() (Inbound, bool) {
	for i := 0; i < geom.NumDirs; i++ {
		side := (b.rr + geom.Dir(i)) % geom.NumDirs
		if q := b.sides[side]; len(q) > 0 {
			in := q[0]
			copy(q, q[1:])
			b.sides[side] = q[:len(q)-1]
			b.rr = (side + 1) % geom.NumDirs
			return in, true
		}
	}
	return Inbound{}, false
}

// Len returns the total number of buffered messages.
func (b *Buffers) Len() int {
	n := 0
	for _, q := range b.sides {
		n += len(q)
	}
	return n
}

// LenSide returns the number of messages buffered for one side.
func (b *Buffers) LenSide(d geom.Dir) int { return len(b.sides[d]) }

// Drops returns the number of messages lost to full buffers.
func (b *Buffers) Drops() int { return b.drops }
