package msg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/lattice"
)

func TestMarshalRoundTrip(t *testing.T) {
	cases := []Message{
		{
			Type: TypeActivate, Round: 3, Tier: TierDecreasing,
			Father: 7, Son: 12, Output: geom.V(2, 11),
			ShortestDistance: 11, IDShortest: 7,
		},
		{
			Type: TypeAck, Round: 3, Father: 7, Son: 12,
			ShortestDistance: InfiniteDistance, IDShortest: 0,
		},
		{Type: TypeSelect, Round: 9, IDShortest: 4},
		{Type: TypeSelectAck, Round: 9, IDShortest: 4},
		{
			Type: TypeMoveDone, Round: 10, Mover: 5,
			From: geom.V(3, 4), To: geom.V(3, 5), Success: true,
		},
		{Type: TypeFinished, Round: 55, Success: true},
		{Type: TypeMoveDone, Round: 1, Mover: 2, From: geom.V(0, 0), To: geom.V(5, 7)},
		{
			Type: TypeAck, Round: 4, Father: 2, Son: 9,
			ShortestDistance: 3, IDShortest: 9,
			NumCands: 2,
			Cands: [MaxBatch]Cand{
				{ID: 9, Distance: 3, Pos: geom.V(4, 5)},
				{ID: 11, Distance: 4, Pos: geom.V(9, 1), Cut: true},
			},
		},
		{
			Type: TypeAck, Round: 6, Father: 1, Son: 3,
			ShortestDistance: 2, IDShortest: 3,
			NumCands: 1,
			Cands: [MaxBatch]Cand{
				{ID: 3, Distance: 2, Pos: geom.V(4, 5), To: geom.V(5, 5), Wave: 2,
					Fp: Footprint{Anchor: geom.V(4, 5), Radius: 1, Write: 0x28}},
			},
		},
	}
	for _, m := range cases {
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(data) != m.WireSize() {
			t.Fatalf("%v: wire size %d, want %d", m, len(data), m.WireSize())
		}
		if len(data) > MaxWireSize {
			t.Fatalf("%v: wire size %d exceeds MaxWireSize %d", m, len(data), MaxWireSize)
		}
		var back Message
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("%v: unmarshal: %v", m, err)
		}
		if back != m {
			t.Errorf("round trip changed message:\n got %+v\nwant %+v", back, m)
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Message{
			Type:             Type(1 + rng.Intn(numTypes)),
			Round:            rng.Uint32(),
			Tier:             Tier(rng.Intn(2)),
			Father:           lattice.BlockID(rng.Int31()),
			Son:              lattice.BlockID(rng.Int31()),
			Output:           geom.V(rng.Intn(4000)-2000, rng.Intn(4000)-2000),
			ShortestDistance: rng.Int31(),
			IDShortest:       lattice.BlockID(rng.Int31()),
			Mover:            lattice.BlockID(rng.Int31()),
			From:             geom.V(rng.Intn(4000)-2000, rng.Intn(4000)-2000),
			To:               geom.V(rng.Intn(4000)-2000, rng.Intn(4000)-2000),
			Success:          rng.Intn(2) == 1,
		}
		m.NumCands = uint8(rng.Intn(MaxBatch + 1))
		for i := 0; i < int(m.NumCands); i++ {
			m.Cands[i] = Cand{
				ID:       lattice.BlockID(rng.Int31()),
				Distance: rng.Int31(),
				Pos:      geom.V(rng.Intn(4000)-2000, rng.Intn(4000)-2000),
				Cut:      rng.Intn(2) == 1,
				To:       geom.V(rng.Intn(4000)-2000, rng.Intn(4000)-2000),
				Wave:     uint8(rng.Intn(MaxBatch + 1)),
				Fp: Footprint{
					Anchor: geom.V(rng.Intn(4000)-2000, rng.Intn(4000)-2000),
					Radius: uint8(rng.Intn(4)),
					Write:  rng.Uint64(),
				},
			}
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var back Message
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMarshalErrors(t *testing.T) {
	if _, err := (Message{}).MarshalBinary(); err == nil {
		t.Error("zero-type message must not marshal")
	}
	var m Message
	if err := m.UnmarshalBinary(make([]byte, BaseWireSize-1)); err == nil {
		t.Error("short buffer must fail")
	}
	bad := make([]byte, BaseWireSize)
	bad[0] = 99
	if err := m.UnmarshalBinary(bad); err == nil {
		t.Error("unknown type must fail")
	}
	// A frame whose candidate count disagrees with its length must fail.
	counted := make([]byte, BaseWireSize)
	counted[0] = byte(TypeAck)
	counted[3] = WireVersion
	counted[44] = 3
	if err := m.UnmarshalBinary(counted); err == nil {
		t.Error("candidate count beyond the frame must fail")
	}
	// A frame stamped with a foreign wire version must fail.
	staleVer := make([]byte, BaseWireSize)
	staleVer[0] = byte(TypeAck)
	staleVer[3] = WireVersion - 1
	if err := m.UnmarshalBinary(staleVer); err == nil {
		t.Error("foreign wire version must fail")
	}
	over := Message{Type: TypeAck, NumCands: MaxBatch + 1}
	if _, err := over.MarshalBinary(); err == nil {
		t.Error("candidate count beyond MaxBatch must not marshal")
	}
}

func TestTypeNamesAndValidity(t *testing.T) {
	for ty := TypeActivate; ty <= TypeFinished; ty++ {
		if !ty.Valid() {
			t.Errorf("type %d should be valid", ty)
		}
		if strings.HasPrefix(ty.String(), "Type(") {
			t.Errorf("type %d has no name", ty)
		}
	}
	if Type(0).Valid() || Type(7).Valid() {
		t.Error("types 0 and 7 should be invalid")
	}
	if Type(0).String() != "Type(0)" {
		t.Errorf("invalid type string = %q", Type(0).String())
	}
}

func TestMessageStringPerType(t *testing.T) {
	cases := []struct {
		m    Message
		want string
	}{
		{Message{Type: TypeActivate, Round: 1, Father: 2, Son: 3, Output: geom.V(2, 11), ShortestDistance: 11, IDShortest: 2}, "Activate[r1 2->3 O=(2,11) d=11 id=2]"},
		{Message{Type: TypeAck, Round: 1, Father: 2, Son: 3, ShortestDistance: InfiniteDistance}, "Ack[r1 3->2 d=inf id=0]"},
		{Message{Type: TypeSelect, Round: 4, IDShortest: 9}, "Select[r4 elected=9]"},
		{Message{Type: TypeFinished, Round: 5, Success: true}, "Finished[r5 ok=true]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestBuffersPerSideFIFO(t *testing.T) {
	b, err := NewBuffers(4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(side geom.Dir, round uint32) Inbound {
		return Inbound{From: 1, Side: side, Msg: Message{Type: TypeActivate, Round: round}}
	}
	// Two messages on the north side keep their order.
	b.Push(mk(geom.North, 1))
	b.Push(mk(geom.North, 2))
	first, ok := b.Pop()
	if !ok || first.Msg.Round != 1 {
		t.Fatalf("first pop = %+v,%v", first, ok)
	}
	second, ok := b.Pop()
	if !ok || second.Msg.Round != 2 {
		t.Fatalf("second pop = %+v,%v", second, ok)
	}
	if _, ok := b.Pop(); ok {
		t.Error("empty buffers must report false")
	}
}

func TestBuffersRoundRobin(t *testing.T) {
	b, _ := NewBuffers(8)
	for i := 0; i < 3; i++ {
		b.Push(Inbound{Side: geom.East, Msg: Message{Type: TypeAck, Round: uint32(100 + i)}})
		b.Push(Inbound{Side: geom.West, Msg: Message{Type: TypeAck, Round: uint32(200 + i)}})
	}
	var sides []geom.Dir
	for {
		in, ok := b.Pop()
		if !ok {
			break
		}
		sides = append(sides, in.Side)
	}
	if len(sides) != 6 {
		t.Fatalf("popped %d messages", len(sides))
	}
	// Round-robin service alternates between the two active sides.
	for i := 1; i < len(sides); i++ {
		if sides[i] == sides[i-1] {
			t.Errorf("sides not alternating: %v", sides)
			break
		}
	}
}

func TestBuffersOverflowDrops(t *testing.T) {
	b, _ := NewBuffers(2)
	in := Inbound{Side: geom.South, Msg: Message{Type: TypeAck}}
	if !b.Push(in) || !b.Push(in) {
		t.Fatal("first two pushes must succeed")
	}
	if b.Push(in) {
		t.Error("third push must fail at capacity 2")
	}
	if b.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", b.Drops())
	}
	if b.Len() != 2 || b.LenSide(geom.South) != 2 {
		t.Errorf("Len = %d, LenSide = %d", b.Len(), b.LenSide(geom.South))
	}
	// Invalid side is also a drop.
	if b.Push(Inbound{Side: geom.Dir(9)}) {
		t.Error("invalid side must be rejected")
	}
	if b.Drops() != 2 {
		t.Errorf("Drops = %d, want 2", b.Drops())
	}
}

func TestNewBuffersValidation(t *testing.T) {
	if _, err := NewBuffers(0); err == nil {
		t.Error("capacity 0 must be rejected")
	}
}

// TestUnmarshalNeverPanics: arbitrary wire bytes either decode or return an
// error; they never panic (a block cannot crash on a corrupted frame).
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(2 * MaxWireSize)
		buf := make([]byte, n)
		rng.Read(buf)
		var m Message
		_ = m.UnmarshalBinary(buf) // must not panic
	}
	// Round-trip of a valid frame with every byte corrupted one at a time.
	orig := Message{Type: TypeActivate, Round: 9, Father: 1, Son: 2,
		Output: geom.V(3, 4), ShortestDistance: 5, IDShortest: 1}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		var m Message
		_ = m.UnmarshalBinary(mut)
	}
}

// fpBit returns the bit for relative cell (dx, dy) in a footprint window of
// the given radius (bit row*size+col, row 0 = north — the compiled-rule
// display order).
func fpBit(dx, dy, radius int) uint64 {
	size := 2*radius + 1
	return 1 << uint((radius-dy)*size+(dx+radius))
}

// TestFootprintOverlap pins the absolute-cell semantics of the footprint
// masks: conflicts are decided in world coordinates, so two footprints with
// different anchors still detect a shared cell, and adjacent-but-disjoint
// write sets do not.
func TestFootprintOverlap(t *testing.T) {
	// Block at (5,5) moving east to (6,5): writes {(5,5),(6,5)}.
	a := Footprint{Anchor: geom.V(5, 5), Radius: 1,
		Write: fpBit(0, 0, 1) | fpBit(1, 0, 1)}
	// Block at (7,5) moving east to (8,5): writes {(7,5),(8,5)}.
	b := Footprint{Anchor: geom.V(7, 5), Radius: 1,
		Write: fpBit(0, 0, 1) | fpBit(1, 0, 1)}
	if a.WritesOverlap(b) || b.WritesOverlap(a) {
		t.Error("write sets {(5,5),(6,5)} and {(7,5),(8,5)} are disjoint")
	}
	// Write-disjoint, but a's destination (6,5) lies inside the radius-1
	// window of the proposer at (7,5): the movers are coupled (coupling is
	// the OR of the two directions — b's writes stay outside a's window).
	if !a.TouchesWindow(geom.V(7, 5), 1) {
		t.Error("write (6,5) inside the radius-1 window of (7,5) must touch it")
	}
	if b.TouchesWindow(geom.V(5, 5), 1) {
		t.Error("writes {(7,5),(8,5)} are outside the radius-1 window of (5,5)")
	}
	// At radius 1, a write 2 cells away is outside the window.
	if a.TouchesWindow(geom.V(8, 5), 1) {
		t.Error("write set {(5,5),(6,5)} is outside the radius-1 window of (8,5)")
	}
	if !a.TouchesWindow(geom.V(8, 5), 2) {
		t.Error("the same write set is inside the radius-2 window of (8,5)")
	}
	// Block at (6,5) moving east: its write set {(6,5),(7,5)} hits both.
	c := Footprint{Anchor: geom.V(6, 5), Radius: 1,
		Write: fpBit(0, 0, 1) | fpBit(1, 0, 1)}
	if !c.WritesOverlap(a) || !c.WritesOverlap(b) {
		t.Error("write set {(6,5),(7,5)} must clash with both neighbours")
	}
	// Far apart: no interference of any kind.
	d := Footprint{Anchor: geom.V(50, 50), Radius: 1, Write: fpBit(0, 0, 1)}
	if a.WritesOverlap(d) || d.TouchesWindow(geom.V(5, 5), 2) || a.TouchesWindow(geom.V(50, 50), 2) {
		t.Error("footprints 45 cells apart must be disjoint")
	}
	var zero Footprint
	if !zero.Empty() || a.Empty() {
		t.Error("Empty: zero footprint is empty, a populated one is not")
	}
	if zero.WritesOverlap(a) || a.WritesOverlap(zero) || zero.TouchesWindow(geom.V(5, 5), 99) {
		t.Error("empty footprint interferes with nothing")
	}
}
