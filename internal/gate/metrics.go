package gate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/server"
)

// ReplicaMetrics is one replica's row in the gateway /metrics document:
// routing state and counters from the gateway's side of the wire.
type ReplicaMetrics struct {
	URL       string `json:"url"`
	State     string `json:"state"`
	Routed    uint64 `json:"routed"`
	CacheHits uint64 `json:"cache_hits"`
	PeerHits  uint64 `json:"peer_hits"`
	Retries   uint64 `json:"retries"`
	Errors    uint64 `json:"errors"`
	Scraped   bool   `json:"scraped"` // this replica's /metrics answered the merge scrape
}

// GatewayMetrics is the JSON document of the gateway's GET /metrics: the
// gateway's own routing counters plus the fleet — every reachable
// replica's snapshot merged into one (histograms summed bucket-wise, so
// fleet quantiles are exact; see server.MergeSnapshots).
type GatewayMetrics struct {
	Replicas     []ReplicaMetrics       `json:"replicas"`
	RoutedTotal  uint64                 `json:"routed_total"`
	RetriesTotal uint64                 `json:"retries_total"`
	ErrorsTotal  uint64                 `json:"errors_total"`
	Fleet        server.MetricsSnapshot `json:"fleet"`
}

// scrape fetches and decodes one replica's /metrics snapshot.
func (g *Gateway) scrape(rp *replica) (server.MetricsSnapshot, bool) {
	var snap server.MetricsSnapshot
	req, err := http.NewRequest(http.MethodGet, rp.url+"/metrics", nil)
	if err != nil {
		return snap, false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return snap, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return snap, false
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&snap); err != nil {
		return snap, false
	}
	return snap, true
}

// Metrics gathers the merged fleet document (also used in-process by the
// bench kernels, so the scrape/merge path itself is exercised under load).
func (g *Gateway) Metrics() GatewayMetrics {
	doc := GatewayMetrics{
		RoutedTotal:  g.routedTotal.Load(),
		RetriesTotal: g.retriesTotal.Load(),
		ErrorsTotal:  g.errorsTotal.Load(),
	}
	type scraped struct {
		snap server.MetricsSnapshot
		ok   bool
	}
	results := make([]scraped, len(g.replicas))
	done := make(chan int, len(g.replicas))
	for i, rp := range g.replicas {
		go func(i int, rp *replica) {
			results[i].snap, results[i].ok = g.scrape(rp)
			done <- i
		}(i, rp)
	}
	for range g.replicas {
		<-done
	}
	snaps := make([]server.MetricsSnapshot, 0, len(g.replicas))
	for i, rp := range g.replicas {
		doc.Replicas = append(doc.Replicas, ReplicaMetrics{
			URL:       rp.url,
			State:     rp.stateName(),
			Routed:    rp.routed.Load(),
			CacheHits: rp.hits.Load(),
			PeerHits:  rp.peers.Load(),
			Retries:   rp.retries.Load(),
			Errors:    rp.errors.Load(),
			Scraped:   results[i].ok,
		})
		if results[i].ok {
			snaps = append(snaps, results[i].snap)
		}
	}
	doc.Fleet = server.MergeSnapshots(snaps)
	return doc
}

// handleMetrics renders the merged document; ?format=prometheus (or
// Accept: text/plain) emits the gateway's own series followed by the
// fleet-merged sbserver series, one scrape for the whole tier.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		gwError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	doc := g.Metrics()
	format := r.URL.Query().Get("format")
	if format == "prometheus" || (format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		doc.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// WritePrometheus renders the gateway series and the merged fleet series.
func (d GatewayMetrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# TYPE sbgate_routed_total counter\nsbgate_routed_total %d\n", d.RoutedTotal)
	fmt.Fprintf(w, "# TYPE sbgate_retries_total counter\nsbgate_retries_total %d\n", d.RetriesTotal)
	fmt.Fprintf(w, "# TYPE sbgate_errors_total counter\nsbgate_errors_total %d\n", d.ErrorsTotal)
	fmt.Fprintf(w, "# TYPE sbgate_replica_up gauge\n")
	for _, rp := range d.Replicas {
		up := 0
		if rp.State == "up" {
			up = 1
		}
		fmt.Fprintf(w, "sbgate_replica_up{replica=%q,state=%q} %d\n", rp.URL, rp.State, up)
	}
	fmt.Fprintf(w, "# TYPE sbgate_replica_routed_total counter\n")
	for _, rp := range d.Replicas {
		fmt.Fprintf(w, "sbgate_replica_routed_total{replica=%q} %d\n", rp.URL, rp.Routed)
	}
	fmt.Fprintf(w, "# TYPE sbgate_replica_cache_hits_total counter\n")
	for _, rp := range d.Replicas {
		fmt.Fprintf(w, "sbgate_replica_cache_hits_total{replica=%q} %d\n", rp.URL, rp.CacheHits)
	}
	fmt.Fprintf(w, "# TYPE sbgate_replica_retries_total counter\n")
	for _, rp := range d.Replicas {
		fmt.Fprintf(w, "sbgate_replica_retries_total{replica=%q} %d\n", rp.URL, rp.Retries)
	}
	d.Fleet.WritePrometheus(w)
}
