package gate

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Replica states. A draining replica (healthz 503) is send-only-inflight:
// the gateway stops routing new work to it but lets the responses it is
// already streaming finish — that, plus retrying refused deterministic
// specs on the successor, is what makes a scale-down lossless. A down
// replica (dial error) is skipped entirely until the health loop sees it
// answer again.
const (
	stateUp int32 = iota
	stateDraining
	stateDown
)

var stateNames = [...]string{"up", "draining", "down"}

// replica is one backend and its gateway-side accounting.
type replica struct {
	url   string
	state atomic.Int32

	routed    atomic.Uint64 // requests proxied here (attempts that sent the request)
	hits      atomic.Uint64 // responses served X-Cache: hit
	peers     atomic.Uint64 // responses served X-Cache: peer
	retries   atomic.Uint64 // requests that failed here and moved to a successor
	errors    atomic.Uint64 // non-retryable transport failures surfaced to clients
	lastProbe atomic.Int64  // unix ns of the last health probe
}

func (rp *replica) stateName() string { return stateNames[rp.state.Load()] }

// healthLoop polls every replica's /healthz on the configured cadence.
// The proxy path also demotes reactively (a 503 or dial error mid-request
// beats the poller to it); the loop's job is promotion — noticing a
// drained or crashed replica has come back — and catching state changes
// on idle rings.
func (g *Gateway) healthLoop() {
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// probeAll checks every replica once, concurrently.
func (g *Gateway) probeAll() {
	done := make(chan struct{}, len(g.replicas))
	for _, rp := range g.replicas {
		go func(rp *replica) {
			g.probeOne(rp)
			done <- struct{}{}
		}(rp)
	}
	for range g.replicas {
		<-done
	}
}

func (g *Gateway) probeOne(rp *replica) {
	timeout := g.cfg.HealthInterval
	if timeout <= 0 {
		timeout = defaultHealthInterval // loop disabled; explicit probes still need a budget
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.url+"/healthz", nil)
	if err != nil {
		rp.state.Store(stateDown)
		return
	}
	resp, err := g.client.Do(req)
	rp.lastProbe.Store(time.Now().UnixNano())
	if err != nil {
		rp.state.Store(stateDown)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusOK:
		rp.state.Store(stateUp)
	case resp.StatusCode == http.StatusServiceUnavailable:
		rp.state.Store(stateDraining)
	default:
		rp.state.Store(stateDown)
	}
}

// healthyURL reports whether the replica accepts new work.
func (rp *replica) accepting() bool { return rp.state.Load() == stateUp }

// markRefused demotes a replica the proxy saw refuse work: 503 means
// draining (it is still finishing in-flight streams), a dial error means
// down. The health loop re-promotes when /healthz recovers.
func (g *Gateway) markRefused(rp *replica, dialErr bool) {
	if dialErr {
		rp.state.Store(stateDown)
	} else {
		rp.state.Store(stateDraining)
	}
}

// isDialError distinguishes "never reached the replica" (safe to retry
// anything, nothing executed) from an in-protocol failure.
func isDialError(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "connection refused") ||
		strings.Contains(s, "no such host") ||
		strings.Contains(s, "connection reset") ||
		strings.Contains(s, "EOF")
}
