package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server/speckey"
)

const (
	defaultVNodes         = 64
	defaultHealthInterval = 500 * time.Millisecond

	headerXCache    = "X-Cache"
	headerSpecKey   = "X-Spec-Key"
	headerReplica   = "X-Replica"    // which replica served this response
	headerPeerProbe = "X-Peer-Probe" // peer URL the replica may consult on a miss

	maxSpecBody = 1 << 20
)

// Config tunes the gateway.
type Config struct {
	// Replicas are the sbserver base URLs the ring is built over
	// (required, e.g. "http://127.0.0.1:8081").
	Replicas []string
	// VNodes is the virtual-node count per replica (default 64): enough
	// points that key segments spread within a few percent of even.
	VNodes int
	// Seed is the replicas' base seed, folded into canonical keys exactly
	// as the replicas fold it (default 1). A mismatch would not break
	// correctness — replicas compute their own cache keys — but would
	// route equivalent spellings of default-seed specs to different
	// replicas, wasting affinity.
	Seed int64
	// HealthInterval is the /healthz polling cadence and per-probe
	// timeout (default 500ms; negative disables the background loop —
	// the proxy path still demotes reactively).
	HealthInterval time.Duration
	// PeerProbe attaches X-Peer-Probe headers naming the key's ring
	// neighbour so replicas can adopt each other's recordings (the
	// replicas must run with -peer-probe).
	PeerProbe bool
	// Client is the outbound HTTP client; the default tunes
	// MaxIdleConnsPerHost for fan-in proxying.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = defaultHealthInterval
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// Gateway is the affinity-routing reverse proxy over a replica fleet.
type Gateway struct {
	cfg      Config
	ring     *ring
	replicas []*replica
	client   *http.Client
	mux      *http.ServeMux

	routedTotal  atomic.Uint64
	retriesTotal atomic.Uint64
	errorsTotal  atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
}

// New builds a gateway over the replica URLs and starts its health loop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gate: no replicas configured")
	}
	g := &Gateway{
		cfg:    cfg,
		client: cfg.Client,
		mux:    http.NewServeMux(),
		stop:   make(chan struct{}),
	}
	urls := make([]string, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		u = strings.TrimSuffix(u, "/")
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("gate: replica %q: want an http(s) base URL", u)
		}
		urls[i] = u
		g.replicas = append(g.replicas, &replica{url: u})
	}
	g.ring = newRing(urls, cfg.VNodes)
	g.mux.HandleFunc("/v1/runs", g.handleRuns)
	g.mux.HandleFunc("/v1/scenarios", g.handleScenarios)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.probeAll() // seed states synchronously so the first request routes sanely
	if cfg.HealthInterval > 0 {
		go g.healthLoop()
	}
	return g, nil
}

// Handler returns the HTTP surface — the same routes the replicas serve,
// so clients talk to a fleet exactly as they talked to one sbserver.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Close stops the health loop. In-flight proxied streams finish on their
// own contexts.
func (g *Gateway) Close() { g.stopOnce.Do(func() { close(g.stop) }) }

func gwError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"type": "error", "error": fmt.Sprintf(format, args...),
	})
}

// handleRuns routes one run by spec affinity and proxies the stream.
//
// The spec is canonicalized with the replicas' own key function
// (speckey), hashed onto the ring, and sent to the first accepting
// replica in ring order. A refusal that provably did not execute —
// a dial error (never reached it) or a 503 (refused at admission while
// draining) — moves a deterministic spec to the next candidate, so a
// scale-down loses nothing; responses already streaming bytes are past
// the point of no return and are never retried. The X-Peer-Probe header
// names the key's nearest other non-down replica: on a cache miss the
// target probes it before running the engine, which is exactly the warm
// previous owner during a drain hand-off.
func (g *Gateway) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		gwError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBody))
	if err != nil {
		gwError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var spec speckey.Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		gwError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	key, err := spec.Key(g.cfg.Seed)
	if err != nil {
		gwError(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend, _ := spec.ResolveBackend() // Key succeeded, so this cannot fail
	order := g.ring.ordered(speckey.Hash(key))

	tried := 0
	for i, rep := range order {
		rp := g.replicas[rep]
		if !rp.accepting() {
			continue
		}
		tried++
		status, sent, err := g.proxyRun(w, r, rp, g.peerFor(order, i), key, body)
		switch {
		case err == nil && status != http.StatusServiceUnavailable:
			return // proxied to completion (whatever the status — 429s etc. pass through)
		case sent:
			// Bytes already reached the client: the response is theirs now,
			// success or not. Never retry a stream mid-flight.
			g.errorsTotal.Add(1)
			rp.errors.Add(1)
			return
		default:
			g.markRefused(rp, isDialError(err))
			if backend != speckey.BackendDES && !isDialError(err) {
				// A non-deterministic run refused in-protocol: surface it
				// rather than guess at idempotency.
				gwError(w, http.StatusServiceUnavailable, "replica %s refused: %v", rp.url, err)
				return
			}
			rp.retries.Add(1)
			g.retriesTotal.Add(1)
		}
	}
	if tried == 0 {
		gwError(w, http.StatusServiceUnavailable, "no replica accepting requests")
		return
	}
	gwError(w, http.StatusServiceUnavailable, "all candidate replicas refused")
}

// peerFor picks the X-Peer-Probe target for the candidate at position i:
// the nearest other replica in ring order that is not down. During a
// drain hand-off that is the draining previous owner — still warm, still
// answering peeks even though it refuses new runs.
func (g *Gateway) peerFor(order []int, i int) string {
	if !g.cfg.PeerProbe {
		return ""
	}
	for j := range order {
		if j == i {
			continue
		}
		rp := g.replicas[order[j]]
		if rp.state.Load() != stateDown {
			return rp.url
		}
	}
	return ""
}

// errRefused marks an in-protocol 503 (admission refusal while draining).
var errRefused = fmt.Errorf("gate: refused (503)")

// proxyRun sends one attempt to one replica and streams the response.
// Returns the upstream status, whether any response bytes reached the
// client, and an error when the attempt should be considered refused.
func (g *Gateway) proxyRun(w http.ResponseWriter, r *http.Request, rp *replica, peer, key string, body []byte) (int, bool, error) {
	u := rp.url + "/v1/runs"
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if ac := r.Header.Get("Accept"); ac != "" {
		req.Header.Set("Accept", ac)
	}
	if peer != "" {
		req.Header.Set(headerPeerProbe, peer)
	}
	rp.routed.Add(1)
	g.routedTotal.Add(1)
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, false, errRefused
	}
	switch resp.Header.Get(headerXCache) {
	case "hit":
		rp.hits.Add(1)
	case "peer":
		rp.peers.Add(1)
	}
	h := w.Header()
	for _, name := range []string{"Content-Type", "Cache-Control", headerXCache, headerSpecKey} {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	if h.Get(headerSpecKey) == "" {
		h.Set(headerSpecKey, key)
	}
	h.Set(headerReplica, rp.url)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	sent := false
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			sent = true
			if _, werr := w.Write(buf[:n]); werr != nil {
				// Client gone: abandoning the copy cancels the upstream
				// request through r.Context(), which the replica observes
				// as a mid-run client disconnect (and rolls back).
				return resp.StatusCode, sent, nil
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return resp.StatusCode, sent, nil
		}
		if rerr != nil {
			if sent {
				return resp.StatusCode, sent, rerr
			}
			return resp.StatusCode, false, rerr
		}
	}
}

// handleScenarios proxies the registry listing from any accepting replica.
func (g *Gateway) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		gwError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for _, rp := range g.replicas {
		if !rp.accepting() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rp.url+"/v1/scenarios", nil)
		if err != nil {
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.markRefused(rp, true)
			continue
		}
		func() {
			defer resp.Body.Close()
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.Header().Set(headerReplica, rp.url)
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
		}()
		return
	}
	gwError(w, http.StatusServiceUnavailable, "no replica accepting requests")
}

// handleHealthz reports fleet liveness: 200 while at least one replica
// accepts work (the fleet is up even mid-drain), 503 otherwise. The body
// lists per-replica states either way.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type repState struct {
		URL   string `json:"url"`
		State string `json:"state"`
	}
	doc := struct {
		Status   string     `json:"status"`
		Replicas []repState `json:"replicas"`
	}{Status: "unavailable"}
	for _, rp := range g.replicas {
		if rp.accepting() {
			doc.Status = "ok"
		}
		doc.Replicas = append(doc.Replicas, repState{URL: rp.url, State: rp.stateName()})
	}
	w.Header().Set("Content-Type", "application/json")
	if doc.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(doc)
}
