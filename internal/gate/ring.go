// Package gate is the horizontal service tier: a streaming reverse proxy
// that fronts N sbserver replicas with spec-affinity routing (identical
// specs always land on the same replica, so the fleet's cache capacity
// partitions instead of duplicating), cross-replica cache peering on ring
// changes, drain-aware rebalancing (a draining replica leaves the ring
// with zero request loss), and fleet-merged observability.
package gate

import (
	"fmt"
	"sort"

	"repro/internal/server/speckey"
)

// ring is a consistent-hash ring over replica indices. Each replica
// contributes vnodes points (hashes of "url#i"), so key segments spread
// evenly and a membership change remaps only the departed replica's
// segments — the property cache affinity lives on: draining one replica
// must not reshuffle every other replica's working set.
type ring struct {
	hashes   []uint64 // sorted point hashes
	replicas []int    // replicas[i] owns hashes[i]
	n        int      // distinct replica count
}

func newRing(urls []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{n: len(urls)}
	type pt struct {
		h   uint64
		rep int
	}
	pts := make([]pt, 0, len(urls)*vnodes)
	for rep, u := range urls {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{mix64(speckey.Hash(fmt.Sprintf("%s#%d", u, v))), rep})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].rep < pts[j].rep // deterministic on (vanishingly rare) hash ties
	})
	r.hashes = make([]uint64, len(pts))
	r.replicas = make([]int, len(pts))
	for i, p := range pts {
		r.hashes[i] = p.h
		r.replicas[i] = p.rep
	}
	return r
}

// mix64 is the splitmix64/murmur3 finalizer: a full-avalanche pass over
// the FNV point and key hashes. Raw FNV-1a is fine as a cache-key
// fingerprint but too gentle for ring placement — inputs differing only
// in a short suffix ("#0" vs "#1" vnode tags, nearby seeds) land on
// nearby hashes, which would cluster one replica's vnodes into one arc
// and starve the others. The finalizer spreads them uniformly.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ordered returns every distinct replica in clockwise ring order starting
// at the key's position: ordered[0] is the key's owner, ordered[1] its
// successor (the peer-probe target and first failover), and so on. The
// caller applies health filtering — the ring itself is pure geometry.
func (r *ring) ordered(keyHash uint64) []int {
	keyHash = mix64(keyHash)
	out := make([]int, 0, r.n)
	if len(r.hashes) == 0 {
		return out
	}
	seen := make([]bool, r.n)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= keyHash })
	for i := 0; i < len(r.hashes) && len(out) < r.n; i++ {
		rep := r.replicas[(start+i)%len(r.hashes)]
		if !seen[rep] {
			seen[rep] = true
			out = append(out, rep)
		}
	}
	return out
}
