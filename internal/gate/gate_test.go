package gate

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/speckey"
)

// fleet spins up n in-process sbserver replicas plus a gateway over them.
// The background health loop is disabled (New still seeds states with one
// synchronous probe pass) so tests control state transitions exactly.
func fleet(t *testing.T, n int, scfg server.Config) (*Gateway, *httptest.Server, []*server.Server, []*httptest.Server) {
	t.Helper()
	scfg.PeerProbe = true
	var (
		srvs []*server.Server
		ts   []*httptest.Server
		urls []string
	)
	for i := 0; i < n; i++ {
		s := server.New(scfg)
		h := httptest.NewServer(s.Handler())
		srvs = append(srvs, s)
		ts = append(ts, h)
		urls = append(urls, h.URL)
		t.Cleanup(func() { h.Close(); s.Close() })
	}
	g, err := New(Config{Replicas: urls, PeerProbe: true, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	t.Cleanup(func() { gw.Close(); g.Close() })
	return g, gw, srvs, ts
}

// postThrough issues one run through the gateway and returns the status,
// the salient headers and the full body.
func postThrough(t *testing.T, gw *httptest.Server, spec speckey.Spec, query string) (int, http.Header, []byte) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(gw.URL+"/v1/runs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST through gateway: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading proxied body: %v", err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestRingSpreadAndRemap: keys spread over every replica, the assignment
// is deterministic, and removing one replica remaps ONLY its keys — every
// other key keeps its owner (the property cache affinity survives on).
func TestRingSpreadAndRemap(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(urls, 64)
	counts := make([]int, len(urls))
	owner := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		h := speckey.Hash(fmt.Sprintf("key-%d", i))
		ord := r.ordered(h)
		if len(ord) != len(urls) {
			t.Fatalf("ordered returned %d replicas, want %d", len(ord), len(urls))
		}
		owner[h] = ord[0]
		counts[ord[0]]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("replica %d owns no keys out of 1000", i)
		}
	}
	// Drop replica 0: its keys must move to their old successor; keys owned
	// elsewhere must not move at all.
	r2 := newRing(urls[1:], 64)
	for i := 0; i < 1000; i++ {
		h := speckey.Hash(fmt.Sprintf("key-%d", i))
		old := r.ordered(h)
		got := r2.ordered(h)[0] + 1 // r2 indices shift down by one
		if old[0] == 0 {
			want := old[1]
			if got != want {
				t.Fatalf("key %d: owner after removal = %d, want old successor %d", i, got, want)
			}
		} else if got != old[0] {
			t.Fatalf("key %d: owner moved %d -> %d though its replica survived", i, old[0], got)
		}
	}
}

// TestGateAffinityAndHeaders: identical specs always land on the same
// replica (second request is that replica's cache hit), different specs
// spread over the fleet, and every response names its spec key and
// serving replica.
func TestGateAffinityAndHeaders(t *testing.T) {
	_, gw, _, _ := fleet(t, 3, server.Config{})
	distinct := map[string]bool{}
	for i := 0; i < 8; i++ {
		spec := speckey.Spec{Scenario: "fig10", Seed: int64(i + 1)}
		wantKey, err := spec.Key(1)
		if err != nil {
			t.Fatal(err)
		}
		status, h1, body1 := postThrough(t, gw, spec, "")
		if status != http.StatusOK {
			t.Fatalf("spec %d: status = %d", i, status)
		}
		if got := h1.Get(headerSpecKey); got != wantKey {
			t.Fatalf("spec %d: X-Spec-Key = %q, want %q", i, got, wantKey)
		}
		if h1.Get(headerXCache) != "miss" {
			t.Fatalf("spec %d: first X-Cache = %q, want miss", i, h1.Get(headerXCache))
		}
		rep := h1.Get(headerReplica)
		if rep == "" {
			t.Fatalf("spec %d: no X-Replica header", i)
		}
		distinct[rep] = true

		status, h2, body2 := postThrough(t, gw, spec, "")
		if status != http.StatusOK || h2.Get(headerXCache) != "hit" {
			t.Fatalf("spec %d: repeat status=%d X-Cache=%q, want a 200 hit", i, status, h2.Get(headerXCache))
		}
		if h2.Get(headerReplica) != rep {
			t.Fatalf("spec %d: repeat served by %q, first by %q — affinity broken", i, h2.Get(headerReplica), rep)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("spec %d: cached replay is not byte-identical to the engine-served stream", i)
		}
	}
	if len(distinct) < 2 {
		t.Errorf("8 distinct specs all routed to %d replica(s); the ring is not spreading", len(distinct))
	}
}

// TestGateGoldenThroughGateway: the golden fig10 run through the whole
// proxy chain still moves exactly 109 blocks.
func TestGateGoldenThroughGateway(t *testing.T) {
	_, gw, _, _ := fleet(t, 2, server.Config{})
	status, _, body := postThrough(t, gw, speckey.Spec{Scenario: "fig10"}, "?stream=none")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var rec struct {
		Type    string `json:"type"`
		Success bool   `json:"success"`
		Hops    int    `json:"hops"`
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "result" || !rec.Success || rec.Hops != 109 {
		t.Fatalf("fig10 through gateway = %+v, want the golden 109-hop success", rec)
	}
}

// TestGateDrainRetryAndPeerAdoption: drain the replica owning a warm key,
// then request that key again. The gateway retries the refusal on the
// ring successor, which adopts the recording from the draining (still
// peek-serving) owner instead of re-running the engine — zero request
// loss AND zero duplicate engine work, with a byte-identical stream.
func TestGateDrainRetryAndPeerAdoption(t *testing.T) {
	g, gw, srvs, ts := fleet(t, 2, server.Config{})
	spec := speckey.Spec{Scenario: "fig10"}
	status, h, warmBody := postThrough(t, gw, spec, "")
	if status != http.StatusOK {
		t.Fatalf("warm-up status = %d", status)
	}
	ownerURL := h.Get(headerReplica)
	var owner *server.Server
	for i, s := range ts {
		if s.URL == ownerURL {
			owner = srvs[i]
		}
	}
	if owner == nil {
		t.Fatalf("X-Replica %q names no fleet member", ownerURL)
	}

	// Drain the owner (graceful: its healthz flips 503, new runs refused,
	// peeks still served). The gateway has NOT probed since — it discovers
	// the drain mid-request and must recover within that same request.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := owner.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	status, h, peerBody := postThrough(t, gw, spec, "")
	if status != http.StatusOK {
		t.Fatalf("post-drain status = %d, want 200 via retry", status)
	}
	if got := h.Get(headerReplica); got == ownerURL || got == "" {
		t.Fatalf("post-drain served by %q, want the surviving replica", got)
	}
	if got := h.Get(headerXCache); got != "peer" {
		t.Fatalf("post-drain X-Cache = %q, want peer (adopted from the draining owner)", got)
	}
	if !bytes.Equal(warmBody, peerBody) {
		t.Fatal("peer-adopted stream is not byte-identical to the original")
	}
	if got := g.retriesTotal.Load(); got < 1 {
		t.Errorf("retriesTotal = %d, want >= 1", got)
	}

	// The adopted entry is now local: the next request is a plain hit on
	// the survivor, no peering involved.
	_, h, _ = postThrough(t, gw, spec, "")
	if got := h.Get(headerXCache); got != "hit" {
		t.Errorf("third request X-Cache = %q, want hit", got)
	}
}

// TestGateStreamCancellationThroughProxy: a client that disconnects
// mid-stream AT THE GATEWAY propagates the cancellation through the
// proxied request to the replica, which aborts the run and rolls the
// surface back — the admission slot drains and the run is recorded as
// canceled, exactly as with a direct client.
func TestGateStreamCancellationThroughProxy(t *testing.T) {
	_, gw, srvs, _ := fleet(t, 1, server.Config{Workers: 2, BatchSize: 2, BatchWait: time.Millisecond})
	s := srvs[0]
	// top=24 runs ~300ms: long enough that a disconnect propagating back
	// through two hops (client->gateway, gateway->replica) still lands
	// mid-run rather than racing the run's completion.
	body, _ := json.Marshal(speckey.Spec{Scenario: "slope", Params: map[string]int{"top": 24}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, gw.URL+"/v1/runs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream ended before the first record")
	}
	cancel() // disconnect mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap := s.Metrics().Snapshot()
		if snap.Canceled >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := s.Metrics().Snapshot()
	if snap.Canceled < 1 {
		t.Fatalf("replica recorded %d cancellations after proxy-side disconnect, want >= 1 (completed=%d failed=%d requests=%d)",
			snap.Canceled, snap.Completed, snap.Failed, snap.Requests)
	}
	if snap.Completed != 0 {
		t.Errorf("replica recorded %d completions, want 0", snap.Completed)
	}

	// The slot freed: a follow-up through the gateway completes.
	status, _, data := postThrough(t, gw, speckey.Spec{Scenario: "fig10"}, "?stream=none")
	if status != http.StatusOK || !bytes.Contains(data, []byte(`"success":true`)) {
		t.Fatalf("follow-up after cancellation: status=%d body=%s", status, data[:min(len(data), 200)])
	}
}

// TestGateMetricsMergeAndHealth: the gateway /metrics document carries
// per-replica routing counters and the bucket-wise merged fleet snapshot;
// /healthz aggregates replica states.
func TestGateMetricsMergeAndHealth(t *testing.T) {
	_, gw, srvs, _ := fleet(t, 3, server.Config{})
	for i := 0; i < 6; i++ {
		spec := speckey.Spec{Scenario: "fig10", Seed: int64(i + 1)}
		if status, _, _ := postThrough(t, gw, spec, "?stream=none"); status != http.StatusOK {
			t.Fatalf("seed run %d: status %d", i, status)
		}
	}
	resp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc GatewayMetrics
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doc.Replicas) != 3 {
		t.Fatalf("metrics lists %d replicas, want 3", len(doc.Replicas))
	}
	var routed uint64
	for _, rp := range doc.Replicas {
		if !rp.Scraped {
			t.Errorf("replica %s not scraped into the merge", rp.URL)
		}
		routed += rp.Routed
	}
	if routed != doc.RoutedTotal || doc.RoutedTotal < 6 {
		t.Errorf("routed: per-replica sum %d, total %d, want equal and >= 6", routed, doc.RoutedTotal)
	}
	// The merged fleet counters must equal the sum over the live replicas.
	var wantRequests, wantCompleted uint64
	var wantRunCount uint64
	for _, s := range srvs {
		snap := s.Metrics().Snapshot()
		wantRequests += snap.Requests
		wantCompleted += snap.Completed
		wantRunCount += snap.Latency["run"].Count
	}
	if doc.Fleet.Requests != wantRequests || doc.Fleet.Completed != wantCompleted {
		t.Errorf("fleet requests/completed = %d/%d, want %d/%d",
			doc.Fleet.Requests, doc.Fleet.Completed, wantRequests, wantCompleted)
	}
	run := doc.Fleet.Latency["run"]
	if run.Count != wantRunCount {
		t.Errorf("merged run-phase count = %d, want %d", run.Count, wantRunCount)
	}
	var bucketSum uint64
	for _, c := range run.BucketsNS {
		bucketSum += c
	}
	if bucketSum != run.Count {
		t.Errorf("merged run-phase buckets sum to %d, count is %d — merge not bucket-exact", bucketSum, run.Count)
	}
	if run.Count > 0 && (run.P95NS < run.MinNS || run.P95NS > run.MaxNS) {
		t.Errorf("merged p95 %d outside [min %d, max %d]", run.P95NS, run.MinNS, run.MaxNS)
	}

	resp, err = http.Get(gw.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sbgate_routed_total", "sbgate_replica_routed_total",
		`sbserver_requests_total{state="completed"}`,
		`sbserver_phase_latency_ns_count{phase="run"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	hz, err := http.Get(gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Replicas []struct {
			State string `json:"state"`
		} `json:"replicas"`
	}
	_ = json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || health.Status != "ok" || len(health.Replicas) != 3 {
		t.Errorf("healthz = %d %+v, want 200 ok with 3 replicas", hz.StatusCode, health)
	}
}
