// Package election implements the value layer of the paper's distributed
// election (§V-C): the (ShortestDistance, IDshortest) candidates carried by
// Activate and Ack messages, their order-insensitive aggregation along the
// Dijkstra–Scholten activity graph, and the per-node routing pointers that
// let the Root's Select message travel down the father/son tree to the
// elected block.
//
// Tie-breaking: the paper has the Root "select randomly one block" among
// equally distant candidates. Aggregation along the tree collapses ties
// before the Root sees them, so randomness is realised with a per-round
// pseudo-random priority: every block derives Priority = h(round, id) from
// the public round number, and candidates order by (distance, priority,
// id). The choice is uniform-like across rounds yet identical on every
// engine and every message ordering, which keeps runs reproducible.
package election

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/msg"
)

// TieBreak selects how equally distant candidates are ordered.
type TieBreak int

const (
	// TieLowestID prefers the smallest block id (fully deterministic).
	TieLowestID TieBreak = iota
	// TieRandom uses the per-round pseudo-random priority (the paper's
	// random selection, made reproducible).
	TieRandom
)

// String implements fmt.Stringer.
func (t TieBreak) String() string {
	switch t {
	case TieLowestID:
		return "lowest-id"
	case TieRandom:
		return "random"
	}
	return fmt.Sprintf("TieBreak(%d)", int(t))
}

// Candidate is a block's bid in one election. Beyond the paper's
// (ShortestDistance, IDshortest) pair it carries what the Root's
// parallel-moves admission ladder consumes: the bidder's position, whether
// the bidder is currently a cut vertex of the ensemble (exec.Env.CutVertex),
// the planned destination of its best move and that move's full cell
// footprint (msg.Footprint, computed once at the proposer from the
// bitboard-compiled rule). None of the extra fields participates in the
// election order.
type Candidate struct {
	Distance int32 // hops to the output O, or msg.InfiniteDistance
	Priority uint64
	ID       lattice.BlockID
	Pos      geom.Vec // bidder's cell at bid time
	Cut      bool     // bidder is an articulation point of the ensemble
	To       geom.Vec // planned destination of the bidder's best move
	Fp       msg.Footprint
}

// Neutral returns the identity element of Merge: an infinitely distant
// non-block. Blocks with d = +inf (eqs. (8)–(9)) bid Neutral.
func Neutral() Candidate {
	return Candidate{Distance: msg.InfiniteDistance, Priority: ^uint64(0), ID: lattice.None}
}

// IsNeutral reports whether c can never win an election.
func (c Candidate) IsNeutral() bool { return c.Distance == msg.InfiniteDistance }

// Better reports whether c strictly precedes o in election order:
// smaller distance, then smaller priority, then smaller id.
func (c Candidate) Better(o Candidate) bool {
	if c.Distance != o.Distance {
		return c.Distance < o.Distance
	}
	if c.Priority != o.Priority {
		return c.Priority < o.Priority
	}
	return c.ID < o.ID
}

// Merge returns the better of a and b. It is commutative, associative and
// idempotent, with Neutral as identity — the properties that make the
// tree-fold independent of message arrival order.
func Merge(a, b Candidate) Candidate {
	if b.Better(a) {
		return b
	}
	return a
}

// String implements fmt.Stringer.
func (c Candidate) String() string {
	if c.IsNeutral() {
		return "candidate<none>"
	}
	return fmt.Sprintf("candidate<d=%d id=%d>", c.Distance, c.ID)
}

// PriorityFor derives block id's tie-break priority for an election round.
// With TieLowestID every priority is zero and order falls back to ids; with
// TieRandom it is a SplitMix64 hash of (round, id), identical on every
// engine because both inputs are public protocol state.
func PriorityFor(mode TieBreak, round uint32, id lattice.BlockID) uint64 {
	if mode == TieLowestID {
		return 0
	}
	x := uint64(round)<<32 | uint64(uint32(id))
	// SplitMix64 finaliser.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Aggregator folds the candidates a node learns during one election round
// (its own bid plus the list carried by each child ack) into a bounded
// top-K set ordered by Better, and remembers per entry which neighbour
// reported it, so the Root's Select messages can be routed down the
// father/son tree to every winner of a batch.
//
// Keeping a top-K set instead of a single max preserves the fold's
// order-insensitivity: Better is a total order (ids are unique), so the kept
// set is the K smallest elements of the multiset union no matter how the
// child acks interleave. K = 1 degenerates to the paper's serial max-fold,
// including the tie-break semantics per slot.
type Aggregator struct {
	k       int
	entries []slot
}

// slot is one kept candidate plus its routing pointer.
type slot struct {
	c   Candidate
	via lattice.BlockID // neighbour that reported c; lattice.None = self
}

// NewAggregator starts an aggregation with the node's own bid, keeping the
// best k candidates (k < 1 is treated as 1; k is capped at msg.MaxBatch,
// the wire format's candidate-list bound).
func NewAggregator(own Candidate, k int) *Aggregator {
	if k < 1 {
		k = 1
	}
	if k > msg.MaxBatch {
		k = msg.MaxBatch
	}
	a := &Aggregator{k: k, entries: make([]slot, 0, k)}
	a.Fold(own, lattice.None)
	return a
}

// Fold merges a candidate reported by neighbour `from` into the top-K set
// and reports whether it was kept. Neutral candidates are the fold identity:
// never kept, but not a drop either (they lost nothing). A false return for
// a non-neutral candidate means the bounded top-K truncated it — callers
// that care about silent truncation at the wire bound count these.
func (a *Aggregator) Fold(c Candidate, from lattice.BlockID) bool {
	if c.IsNeutral() {
		return true
	}
	// Find the insertion point in the Better order (entries are tiny: k <=
	// msg.MaxBatch, so a linear scan beats anything clever). c goes after
	// every kept entry it does not strictly beat, so on an exact duplicate
	// the first-reported entry keeps its slot, like the serial max-fold.
	i := 0
	for i < len(a.entries) && !c.Better(a.entries[i].c) {
		i++
	}
	if i == a.k {
		return false // worse than every kept candidate
	}
	if len(a.entries) < a.k {
		a.entries = append(a.entries, slot{})
	}
	copy(a.entries[i+1:], a.entries[i:])
	a.entries[i] = slot{c: c, via: from}
	return true
}

// Best returns the best kept candidate, or Neutral when nothing was kept.
func (a *Aggregator) Best() Candidate {
	if len(a.entries) == 0 {
		return Neutral()
	}
	return a.entries[0].c
}

// Via returns the neighbour whose subtree holds Best, or lattice.None when
// the node's own bid is best.
func (a *Aggregator) Via() lattice.BlockID {
	if len(a.entries) == 0 {
		return lattice.None
	}
	return a.entries[0].via
}

// ViaFor returns the neighbour whose subtree reported candidate id (the hop
// a Select for that winner must take), or false when id was not kept.
func (a *Aggregator) ViaFor(id lattice.BlockID) (lattice.BlockID, bool) {
	for _, e := range a.entries {
		if e.c.ID == id {
			return e.via, true
		}
	}
	return lattice.None, false
}

// Len returns the number of kept candidates.
func (a *Aggregator) Len() int { return len(a.entries) }

// At returns the i-th kept candidate in Better order.
func (a *Aggregator) At(i int) Candidate { return a.entries[i].c }
