// Package election implements the value layer of the paper's distributed
// election (§V-C): the (ShortestDistance, IDshortest) candidates carried by
// Activate and Ack messages, their order-insensitive aggregation along the
// Dijkstra–Scholten activity graph, and the per-node routing pointers that
// let the Root's Select message travel down the father/son tree to the
// elected block.
//
// Tie-breaking: the paper has the Root "select randomly one block" among
// equally distant candidates. Aggregation along the tree collapses ties
// before the Root sees them, so randomness is realised with a per-round
// pseudo-random priority: every block derives Priority = h(round, id) from
// the public round number, and candidates order by (distance, priority,
// id). The choice is uniform-like across rounds yet identical on every
// engine and every message ordering, which keeps runs reproducible.
package election

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/msg"
)

// TieBreak selects how equally distant candidates are ordered.
type TieBreak int

const (
	// TieLowestID prefers the smallest block id (fully deterministic).
	TieLowestID TieBreak = iota
	// TieRandom uses the per-round pseudo-random priority (the paper's
	// random selection, made reproducible).
	TieRandom
)

// String implements fmt.Stringer.
func (t TieBreak) String() string {
	switch t {
	case TieLowestID:
		return "lowest-id"
	case TieRandom:
		return "random"
	}
	return fmt.Sprintf("TieBreak(%d)", int(t))
}

// Candidate is a block's bid in one election.
type Candidate struct {
	Distance int32 // hops to the output O, or msg.InfiniteDistance
	Priority uint64
	ID       lattice.BlockID
}

// Neutral returns the identity element of Merge: an infinitely distant
// non-block. Blocks with d = +inf (eqs. (8)–(9)) bid Neutral.
func Neutral() Candidate {
	return Candidate{Distance: msg.InfiniteDistance, Priority: ^uint64(0), ID: lattice.None}
}

// IsNeutral reports whether c can never win an election.
func (c Candidate) IsNeutral() bool { return c.Distance == msg.InfiniteDistance }

// Better reports whether c strictly precedes o in election order:
// smaller distance, then smaller priority, then smaller id.
func (c Candidate) Better(o Candidate) bool {
	if c.Distance != o.Distance {
		return c.Distance < o.Distance
	}
	if c.Priority != o.Priority {
		return c.Priority < o.Priority
	}
	return c.ID < o.ID
}

// Merge returns the better of a and b. It is commutative, associative and
// idempotent, with Neutral as identity — the properties that make the
// tree-fold independent of message arrival order.
func Merge(a, b Candidate) Candidate {
	if b.Better(a) {
		return b
	}
	return a
}

// String implements fmt.Stringer.
func (c Candidate) String() string {
	if c.IsNeutral() {
		return "candidate<none>"
	}
	return fmt.Sprintf("candidate<d=%d id=%d>", c.Distance, c.ID)
}

// PriorityFor derives block id's tie-break priority for an election round.
// With TieLowestID every priority is zero and order falls back to ids; with
// TieRandom it is a SplitMix64 hash of (round, id), identical on every
// engine because both inputs are public protocol state.
func PriorityFor(mode TieBreak, round uint32, id lattice.BlockID) uint64 {
	if mode == TieLowestID {
		return 0
	}
	x := uint64(round)<<32 | uint64(uint32(id))
	// SplitMix64 finaliser.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Aggregator folds the candidates a node learns during one election round
// (its own bid plus one per child ack) and remembers which neighbour
// reported the running best, so Select can be routed later.
type Aggregator struct {
	best Candidate
	via  lattice.BlockID // neighbour that reported best; lattice.None = self
}

// NewAggregator starts an aggregation with the node's own bid.
func NewAggregator(own Candidate) *Aggregator {
	return &Aggregator{best: own, via: lattice.None}
}

// Fold merges a candidate reported by neighbour `from`.
func (a *Aggregator) Fold(c Candidate, from lattice.BlockID) {
	if c.Better(a.best) {
		a.best = c
		a.via = from
	}
}

// Best returns the current best candidate.
func (a *Aggregator) Best() Candidate { return a.best }

// Via returns the neighbour whose subtree holds Best, or lattice.None when
// the node's own bid is best.
func (a *Aggregator) Via() lattice.BlockID { return a.via }
