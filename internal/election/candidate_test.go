package election

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/msg"
)

func randCandidate(rng *rand.Rand) Candidate {
	if rng.Intn(5) == 0 {
		return Neutral()
	}
	return Candidate{
		Distance: int32(rng.Intn(100)),
		Priority: uint64(rng.Intn(8)),
		ID:       lattice.BlockID(1 + rng.Intn(50)),
	}
}

// TestMergeSemilattice: Merge is commutative, associative, idempotent and
// has Neutral as identity — the algebra that makes the distributed fold
// order-insensitive.
func TestMergeSemilattice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randCandidate(rng), randCandidate(rng), randCandidate(rng)
		if Merge(a, b) != Merge(b, a) {
			return false
		}
		if Merge(Merge(a, b), c) != Merge(a, Merge(b, c)) {
			return false
		}
		if Merge(a, a) != a {
			return false
		}
		return Merge(a, Neutral()) == a && Merge(Neutral(), a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBetterOrdering(t *testing.T) {
	near := Candidate{Distance: 3, ID: 9}
	far := Candidate{Distance: 8, ID: 1}
	if !near.Better(far) || far.Better(near) {
		t.Error("distance must dominate")
	}
	a := Candidate{Distance: 3, Priority: 1, ID: 9}
	b := Candidate{Distance: 3, Priority: 2, ID: 1}
	if !a.Better(b) {
		t.Error("priority must break distance ties")
	}
	c := Candidate{Distance: 3, Priority: 1, ID: 2}
	if !c.Better(a) {
		t.Error("id must break (distance,priority) ties")
	}
	if Neutral().Better(near) {
		t.Error("neutral never wins")
	}
	if !near.Better(Neutral()) {
		t.Error("anything beats neutral")
	}
	if !Neutral().IsNeutral() || near.IsNeutral() {
		t.Error("IsNeutral wrong")
	}
}

// TestFoldMatchesLinearScan: aggregating candidates in any order yields the
// global minimum and routes via the correct neighbour.
func TestFoldMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		own := randCandidate(rng)
		n := rng.Intn(6)
		type report struct {
			c    Candidate
			from lattice.BlockID
		}
		reports := make([]report, n)
		for i := range reports {
			reports[i] = report{randCandidate(rng), lattice.BlockID(100 + i)}
		}
		agg := NewAggregator(own, 1)
		for _, i := range rng.Perm(n) {
			agg.Fold(reports[i].c, reports[i].from)
		}
		// Linear scan reference.
		best, via := own, lattice.None
		for _, r := range reports {
			if r.c.Better(best) {
				best, via = r.c, r.from
			}
		}
		if agg.Best() != best {
			t.Fatalf("trial %d: Best = %v, want %v", trial, agg.Best(), best)
		}
		if agg.Via() != via {
			t.Fatalf("trial %d: Via = %v, want %v", trial, agg.Via(), via)
		}
	}
}

// TestTopKFoldOrderInsensitive: with k > 1 the kept set is the k smallest
// elements of the multiset union in Better order, no matter the fold order,
// and every kept candidate routes via the neighbour that reported it.
func TestTopKFoldOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(4)
		n := rng.Intn(10)
		type report struct {
			c    Candidate
			from lattice.BlockID
		}
		reports := make([]report, n)
		used := map[lattice.BlockID]bool{}
		for i := range reports {
			c := randCandidate(rng)
			// Protocol invariant: each block bids once per round, so kept
			// ids are unique. Drop duplicate ids to neutral.
			if used[c.ID] {
				c = Neutral()
			}
			used[c.ID] = true
			reports[i] = report{c, lattice.BlockID(100 + i)}
		}
		agg := NewAggregator(Neutral(), k)
		for _, i := range rng.Perm(n) {
			agg.Fold(reports[i].c, reports[i].from)
		}
		// Reference: sort the non-neutral reports by Better, take k.
		var ref []report
		for _, r := range reports {
			if r.c.IsNeutral() {
				continue
			}
			i := 0
			for i < len(ref) && ref[i].c.Better(r.c) {
				i++
			}
			ref = append(ref[:i], append([]report{r}, ref[i:]...)...)
		}
		if len(ref) > k {
			ref = ref[:k]
		}
		if agg.Len() != len(ref) {
			t.Fatalf("trial %d: kept %d candidates, want %d", trial, agg.Len(), len(ref))
		}
		for i, r := range ref {
			if agg.At(i) != r.c {
				t.Fatalf("trial %d: At(%d) = %v, want %v", trial, i, agg.At(i), r.c)
			}
			via, ok := agg.ViaFor(r.c.ID)
			if !ok || via != r.from {
				t.Fatalf("trial %d: ViaFor(%d) = %v,%v, want %v", trial, r.c.ID, via, ok, r.from)
			}
		}
		if _, ok := agg.ViaFor(lattice.BlockID(9999)); ok {
			t.Fatalf("trial %d: ViaFor found an unkept id", trial)
		}
	}
}

func TestPriorityModes(t *testing.T) {
	if PriorityFor(TieLowestID, 7, 3) != 0 {
		t.Error("lowest-id mode must have zero priorities")
	}
	// Deterministic: same inputs, same priority.
	if PriorityFor(TieRandom, 7, 3) != PriorityFor(TieRandom, 7, 3) {
		t.Error("random priority not deterministic")
	}
	// Sensitive to both round and id.
	if PriorityFor(TieRandom, 7, 3) == PriorityFor(TieRandom, 8, 3) {
		t.Error("priority should vary with round")
	}
	if PriorityFor(TieRandom, 7, 3) == PriorityFor(TieRandom, 7, 4) {
		t.Error("priority should vary with id")
	}
}

// TestRandomTieBreakIsFairAcrossRounds: with TieRandom, the winner among a
// fixed tied set changes from round to round and visits every contender.
func TestRandomTieBreakIsFairAcrossRounds(t *testing.T) {
	ids := []lattice.BlockID{1, 2, 3, 4, 5}
	wins := map[lattice.BlockID]int{}
	for round := uint32(1); round <= 500; round++ {
		best := Neutral()
		for _, id := range ids {
			c := Candidate{Distance: 4, Priority: PriorityFor(TieRandom, round, id), ID: id}
			best = Merge(best, c)
		}
		wins[best.ID]++
	}
	for _, id := range ids {
		if wins[id] == 0 {
			t.Errorf("block %d never won a tie in 500 rounds: %v", id, wins)
		}
	}
	// No contender should take the overwhelming majority.
	for id, w := range wins {
		if w > 300 {
			t.Errorf("block %d won %d/500 ties; distribution skewed: %v", id, w, wins)
		}
	}
}

func TestNeutralDistanceIsInfinite(t *testing.T) {
	if Neutral().Distance != msg.InfiniteDistance {
		t.Error("neutral must carry the wire infinity")
	}
}

func TestStrings(t *testing.T) {
	if TieLowestID.String() != "lowest-id" || TieRandom.String() != "random" {
		t.Error("tie-break names wrong")
	}
	if TieBreak(9).String() != "TieBreak(9)" {
		t.Error("invalid tie-break name wrong")
	}
	if Neutral().String() != "candidate<none>" {
		t.Error("neutral string wrong")
	}
	c := Candidate{Distance: 4, ID: 11}
	if c.String() != "candidate<d=4 id=11>" {
		t.Errorf("candidate string = %q", c.String())
	}
}
