package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// complexity remarks and the engine-level throughput claim. Run with
//
//	go test -bench=. -benchmem
//
// The harness in cmd/sbbench prints the corresponding report tables; the
// benchmarks here measure the cost of regenerating each artefact and report
// the headline metric of each experiment via b.ReportMetric.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/matrix"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// BenchmarkTableIIOverlap measures the ⊗ operator of Table II (the
// innermost kernel of every motion validation).
func BenchmarkTableIIOverlap(b *testing.B) {
	mm := rules.EastSliding().MM
	mp := matrix.MustPresence([][]int{{0, 0, 0}, {1, 1, 0}, {1, 1, 1}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !matrix.Overlap(mm, mp) {
			b.Fatal("east sliding must validate")
		}
	}
}

// BenchmarkTableICodes measures the event-code classification of Table I.
func BenchmarkTableICodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for c := event.Code(0); c < event.NumCodes; c++ {
			_ = c.Static()
			_ = c.Dynamic()
			_, _ = event.RequiredBefore(c)
		}
	}
}

// BenchmarkFig3Validation measures a full rule validation against a sensed
// neighbourhood (eqs. (1)-(3)).
func BenchmarkFig3Validation(b *testing.B) {
	occ := func(v geom.Vec) bool {
		switch v {
		case geom.V(0, 0), geom.V(1, 0), geom.V(2, 0), geom.V(0, 1), geom.V(1, 1):
			return true
		}
		return false
	}
	rule := rules.EastSliding()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mp := rules.PresenceAround(geom.V(1, 1), 1, occ)
		if !rule.AppliesTo(mp) {
			b.Fatal("must validate")
		}
	}
}

// BenchmarkFig4Closure measures deriving the full rule family from the base
// rules "via symmetry or rotation".
func BenchmarkFig4Closure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(rules.Closure(rules.BaseRules()...)); got != 16 {
			b.Fatalf("closure = %d", got)
		}
	}
}

// BenchmarkFig7XMLRoundTrip measures the Fig. 7 capability codec.
func BenchmarkFig7XMLRoundTrip(b *testing.B) {
	lib := rules.StandardLibrary()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := rules.EncodeXML(lib)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rules.DecodeXML(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Reconfiguration measures the full §V-D example: the
// distributed elections, motion planning and physics of the 12-block run.
// block-moves/run reports the Remark-4 metric next to the paper's 55.
func BenchmarkFig10Reconfiguration(b *testing.B) {
	eng := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1))
	var hops, rounds int
	for i := 0; i < b.N; i++ {
		s, err := scenario.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(context.Background(), s.Surface, s.Config())
		if err != nil || !res.Success {
			b.Fatalf("%v err=%v", res, err)
		}
		hops, rounds = res.Hops, res.Rounds
	}
	b.ReportMetric(float64(hops), "block-moves/run")
	b.ReportMetric(float64(rounds), "elections/run")
}

// benchSweep parameterises the Remark 2-4 benchmarks over N.
func benchSweep(b *testing.B, metric string, pick func(core.Result) float64) {
	eng := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1))
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				scs, err := scenario.TowerSweep([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				s := scs[0]
				res, err := eng.Run(context.Background(), s.Surface, s.Config())
				if err != nil || !res.Success {
					b.Fatalf("%v err=%v", res, err)
				}
				last = pick(res)
			}
			b.ReportMetric(last, metric)
		})
	}
}

// BenchmarkRemark2DistanceComputations: O(N^3) bound.
func BenchmarkRemark2DistanceComputations(b *testing.B) {
	benchSweep(b, "dist-comps/run", func(r core.Result) float64 {
		return float64(r.Counters.DistanceComputations)
	})
}

// BenchmarkRemark3Messages: O(N^3) bound.
func BenchmarkRemark3Messages(b *testing.B) {
	benchSweep(b, "messages/run", func(r core.Result) float64 {
		return float64(r.MessagesSent)
	})
}

// BenchmarkRemark4Hops: O(N^2) bound.
func BenchmarkRemark4Hops(b *testing.B) {
	benchSweep(b, "hops/run", func(r core.Result) float64 {
		return float64(r.Hops)
	})
}

// BenchmarkLemma1RandomInstance measures a randomized staircase solve.
func BenchmarkLemma1RandomInstance(b *testing.B) {
	eng := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1))
	for i := 0; i < b.N; i++ {
		s, err := scenario.RandomStaircase(int64(i%50) + 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(context.Background(), s.Surface, s.Config())
		if err != nil || !res.Success {
			b.Fatalf("seed %d: %v err=%v", i%50+1, res, err)
		}
	}
}

// timerEvent is the typed self-rescheduling module timer of the throughput
// benchmark: the scheduler's event ring carries it without any per-event
// closure, so steady-state scheduling allocates nothing
// (TestSchedulerTypedEventAllocs in internal/sim pins that to zero).
type timerEvent struct {
	s         *sim.Scheduler
	id        int
	remaining int
}

// Fire implements sim.Event.
func (t *timerEvent) Fire() {
	if t.remaining <= 0 {
		return
	}
	t.remaining--
	t.s.Schedule(sim.Time(1+t.id%7), t)
}

// BenchmarkSimThroughput is experiment E13: raw event throughput of the
// discrete-event core (the paper reports ~650k events/s for VisibleSim with
// 2e6 modules). events/sec is the headline metric; allocs/op is the typed
// event ring's guard — the per-event cost must stay flat.
func BenchmarkSimThroughput(b *testing.B) {
	for _, modules := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("modules=%d", modules), func(b *testing.B) {
			b.ReportAllocs()
			var processed uint64
			for i := 0; i < b.N; i++ {
				s := sim.NewScheduler(1)
				perModule := 2_000_000 / modules
				if perModule < 2 {
					perModule = 2
				}
				timers := make([]timerEvent, modules)
				for m := 0; m < modules; m++ {
					timers[m] = timerEvent{s: s, id: m, remaining: perModule}
					s.Schedule(sim.Time(m%13), &timers[m])
				}
				processed = s.Run(0)
			}
			b.ReportMetric(float64(processed)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkBaselineFreeMotion is the E14 comparator: the predecessor
// system's run on the Fig. 10 instance.
func BenchmarkBaselineFreeMotion(b *testing.B) {
	var hops int
	for i := 0; i < b.N; i++ {
		s, err := scenario.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		res, err := baseline.RunFreeMotion(s.Surface, s.Input, s.Output)
		if err != nil || !res.Success {
			b.Fatalf("%v err=%v", res, err)
		}
		hops = res.Hops
	}
	b.ReportMetric(float64(hops), "block-moves/run")
}

// BenchmarkHungarianOracle measures the optimal-assignment lower bound.
func BenchmarkHungarianOracle(b *testing.B) {
	s, err := scenario.Fig10()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Oracle(s.Surface, s.Input, s.Output); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncRuntime is experiment A3: the goroutine backend on Fig. 10.
func BenchmarkAsyncRuntime(b *testing.B) {
	eng := core.NewEngine(rules.StandardLibrary(), core.WithBackend(core.Async), core.WithSeed(1))
	for i := 0; i < b.N; i++ {
		s, err := scenario.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(context.Background(), s.Surface, s.Config())
		if err != nil || !res.Success {
			b.Fatalf("%v err=%v", res, err)
		}
	}
}

// BenchmarkPlannerApplicationsFor measures the per-block move enumeration
// (the inner loop of eq. (9)'s mobility test).
func BenchmarkPlannerApplicationsFor(b *testing.B) {
	scs, err := scenario.TowerSweep([]int{16})
	if err != nil {
		b.Fatal(err)
	}
	s := scs[0]
	lib := rules.StandardLibrary()
	pos := geom.V(2, 7) // a lane block with several applicable rules
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = lib.ApplicationsFor(pos, s.Surface.Occupied)
	}
}

// BenchmarkApplicationsFor measures the compiled motion-validation paths:
// the predicate-sampled window matcher (what a distributed block runs over
// its Sense hook), the bitboard window matcher extracting words straight
// from the lattice row bitsets, and the physics-level boolean Validate,
// which must stay allocation-free.
func BenchmarkApplicationsFor(b *testing.B) {
	scs, err := scenario.TowerSweep([]int{16})
	if err != nil {
		b.Fatal(err)
	}
	surf := scs[0].Surface
	lib := rules.StandardLibrary()
	pos := geom.V(2, 7) // a lane block with several applicable rules

	b.Run("predicate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if apps := lib.ApplicationsFor(pos, surf.Occupied); len(apps) == 0 {
				b.Fatal("lane block must have applications")
			}
		}
	})
	b.Run("bitboard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if apps := lib.ApplicationsOn(pos, surf); len(apps) == 0 {
				b.Fatal("lane block must have applications")
			}
		}
	})
	b.Run("validate", func(b *testing.B) {
		apps := lib.ApplicationsOn(pos, surf)
		if len(apps) == 0 {
			b.Fatal("lane block must have applications")
		}
		app := apps[0]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := surf.Validate(app, lattice.Constraints{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
