// Corner: a step-by-step replay of the motion-rule system of §IV, including
// the corner-crossing choreography of Fig. 10 where one block carries
// another over the top of a wall (the "#5 carries #9 beyond #10" episode).
// It drives the lattice directly — no elections — to make each rule
// application visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/rules"
	"repro/internal/trace"
)

func main() {
	// A wall at x=2 (heights 0..2) and a climbing pair at x=3.
	surf, err := lattice.NewSurface(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []geom.Vec{
		geom.V(2, 0), geom.V(2, 1), geom.V(2, 2), // the wall
		geom.V(3, 0), geom.V(3, 1), // the climbers
	} {
		if _, err := surf.Place(v); err != nil {
			log.Fatal(err)
		}
	}
	in, out := geom.V(2, 0), geom.V(2, 6)
	cons := lattice.Constraints{RequireConnectivity: true}
	lib := rules.StandardLibrary()
	show := func(caption string) {
		fmt.Println(caption)
		fmt.Println(trace.Render(surf, in, out))
	}
	show("initial: wall x=2, climbers x=3")

	apply := func(pos geom.Vec, wantTo geom.Vec) {
		id, ok := surf.BlockAt(pos)
		if !ok {
			log.Fatalf("no block at %v", pos)
		}
		apps, err := surf.ApplicationsFor(id, lib, cons)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range apps {
			if mv, ok := a.MoveOf(pos); ok && mv.To == wantTo {
				res, err := surf.Apply(a, cons)
				if err != nil {
					log.Fatal(err)
				}
				kind := "slide"
				if res.IsCarrying {
					kind = "carry (simultaneous pair motion, handover code 5)"
				}
				fmt.Printf("block %d: %s via %s — %s\n", id, mv.To, a.Rule.Name, kind)
				return
			}
		}
		log.Fatalf("no valid application moves %v to %v", pos, wantTo)
	}

	// The upper climber slides up along the wall face (east sliding rule,
	// mirrored: supports are the wall blocks west of it), and the lower
	// climber follows to close the gap.
	apply(geom.V(3, 1), geom.V(3, 2))
	show("after the first slide: the upper climber is level with the wall top")
	apply(geom.V(3, 0), geom.V(3, 1))
	show("after the second slide: the pair is reunited at the wall top")

	// Sliding further fails: no support west of (3,3). The pair crosses the
	// corner with a carrying rule instead: both climbers move one cell
	// north simultaneously; the lower one occupies the cell the upper one
	// abandons in the same instant (event code 5).
	apply(geom.V(3, 2), geom.V(3, 3))
	show("after the carry: the corner is crossed")

	// The upper climber can now slide west onto the wall top.
	apply(geom.V(3, 3), geom.V(2, 3))
	show("after the west slide: the wall has grown by one cell")

	fmt.Printf("total: %d elementary block moves in %d rule applications\n",
		surf.Hops(), surf.Applications())
}
