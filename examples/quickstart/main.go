// Quickstart: build the paper's Fig. 10 instance, run the distributed
// reconfiguration through the unified session API, and print the before and
// after states. This is the smallest complete use of the public packages:
// scenario -> rules -> core.Engine -> trace.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	// The 12-block example of the paper's §V-D: input I at the bottom of a
	// staircase of blocks, output O ten rows above in the same column. The
	// scenario registry is the shared catalogue behind the CLIs and the
	// sbserver request schema; scenario.Fig10() is the direct equivalent.
	s, err := scenario.Build("fig10", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial configuration:")
	fmt.Println(trace.Render(s.Surface, s.Input, s.Output))

	// The motion capabilities of §IV: the two base rules of Fig. 7 closed
	// under symmetry and rotation (16 capabilities).
	lib := rules.StandardLibrary()

	// A session engine over that library. The default backend is the
	// deterministic discrete-event simulator; core.WithBackend(core.Async)
	// would select the goroutine runtime instead, and core.WithObserver
	// attaches the structured event stream (rounds, elections, motions,
	// termination, message totals).
	elections := 0
	eng := core.NewEngine(lib,
		core.WithSeed(1),
		core.WithObserver(core.ObserverFunc(func(ev core.Event) {
			if ev.Kind == core.EventElectionDecided {
				elections++
			}
		})),
	)

	// Run Algorithm 1: iterated Dijkstra-Scholten elections; each elected
	// block hops once towards O until a block occupies O. The context can
	// cancel or deadline the session cleanly: the surface is always left
	// connected and fully rolled back.
	res, err := eng.Run(context.Background(), s.Surface, s.Config())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("final configuration:")
	fmt.Println(trace.Render(s.Surface, s.Input, s.Output))
	fmt.Println(res)
	if !res.Success {
		log.Fatal("reconfiguration failed")
	}
	fmt.Printf("\nthe %d-cell shortest path stands after %d elections (%d observed) and %d block moves\n",
		res.PathLength+1, res.Rounds, elections, res.Hops)
}
