// Quickstart: build the paper's Fig. 10 instance, run the distributed
// reconfiguration on the deterministic simulator, and print the before and
// after states. This is the smallest complete use of the public packages:
// scenario -> rules -> core.Run -> trace.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	// The 12-block example of the paper's §V-D: input I at the bottom of a
	// staircase of blocks, output O ten rows above in the same column.
	s, err := scenario.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial configuration:")
	fmt.Println(trace.Render(s.Surface, s.Input, s.Output))

	// The motion capabilities of §IV: the two base rules of Fig. 7 closed
	// under symmetry and rotation (16 capabilities).
	lib := rules.StandardLibrary()

	// Run Algorithm 1: iterated Dijkstra-Scholten elections; each elected
	// block hops once towards O until a block occupies O.
	res, err := core.Run(s.Surface, lib, s.Config(), core.RunParams{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("final configuration:")
	fmt.Println(trace.Render(s.Surface, s.Input, s.Output))
	fmt.Println(res)
	if !res.Success {
		log.Fatal("reconfiguration failed")
	}
	fmt.Printf("\nthe %d-cell shortest path stands after %d elections and %d block moves\n",
		res.PathLength+1, res.Rounds, res.Hops)
}
