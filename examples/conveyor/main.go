// Conveyor: the production-line story of the paper's introduction. The
// surface first reconfigures itself into a shortest path from the part
// input I to the part output O; then fragile micro-parts ride the air-jet
// actuators along the built path, one cell per actuation tick, without any
// contact between parts — the metric that matters is delivery throughput.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/convey"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	// A 16-block tower instance: the conveyor must span 14 hops.
	scs, err := scenario.TowerSweep([]int{16})
	if err != nil {
		log.Fatal(err)
	}
	s := scs[0]
	fmt.Printf("production line: parts enter at %s, leave at %s (%d cells)\n\n",
		s.Input, s.Output, s.Input.Manhattan(s.Output)+1)

	// Phase 1 — the blocks build the conveyor. The convey.Builder observes
	// the session's event stream and hands over to the conveying phase once
	// the Root reports success.
	builder := convey.NewBuilder(s.Surface, s.Input, s.Output)
	eng := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1), core.WithObserver(builder))
	res, err := eng.Run(context.Background(), s.Surface, s.Config())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Success {
		log.Fatalf("reconfiguration failed: %v", res)
	}
	fmt.Printf("conveyor built: %d elections, %d block moves (%d rule applications observed)\n",
		res.Rounds, res.Hops, builder.Motions())
	fmt.Println(trace.Render(s.Surface, s.Input, s.Output))

	// Phase 2 — convey a batch of parts.
	c, err := builder.Conveyor()
	if err != nil {
		log.Fatal(err)
	}
	const batch = 50
	injected, delivered := 0, 0
	var firstLatency int
	for tick := 0; delivered < batch; tick++ {
		if injected < batch {
			if _, err := c.Inject(); err == nil {
				injected++
			}
		}
		for _, d := range c.Tick() {
			if delivered == 0 {
				firstLatency = d.Latency
			}
			delivered++
		}
		if tick > 100*batch {
			log.Fatal("conveying stalled")
		}
	}
	fmt.Printf("batch of %d parts delivered in %d ticks\n", batch, c.Ticks())
	fmt.Printf("first-part latency: %d ticks (= path length %d)\n", firstLatency, c.PathLength())
	fmt.Printf("steady-state throughput: %.2f parts/tick\n",
		float64(delivered)/float64(c.Ticks()))
}
