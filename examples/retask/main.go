// Retask: the flexibility pitch of the Smart Blocks project (§I). A classic
// monolithic conveyor must be replaced when the output point of the line
// changes; a modular surface simply rebuilds itself. This example runs the
// same initial blob against two different output points — the "morning
// shift" and the "afternoon shift" — and reports the cost of each
// deployment.
//
// The two deployments are independent instances of one session engine, so
// they go through Engine.RunBatch: the worker pool runs them concurrently,
// results come back in input order, and each instance's observer events
// (were an Observer attached) would arrive contiguously with the instance
// index stamped.
//
// (Rebuilding directly from a finished column is deliberately not shown:
// a bare 1-wide column is exactly the blocking shape Remark 1 warns about —
// blocks in a line have no lateral support and cannot restart. A real line
// would redeploy from the compact blob, as modelled here.)
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	// One session engine serves every deployment of the day.
	eng := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1), core.WithWorkers(2))

	shifts := []struct {
		name string
		rise int
	}{
		// Morning: a short line. Afternoon: the pick-up point moved three
		// rows further.
		{"morning shift", 7},
		{"afternoon shift", 10},
	}

	// The same 12-block staircase blob each time, as its own instance.
	scs := make([]*scenario.Scenario, len(shifts))
	insts := make([]core.Instance, len(shifts))
	for i, sh := range shifts {
		s, err := scenario.Staircase("blob", []int{5, 5, 2}, sh.rise)
		if err != nil {
			log.Fatal(err)
		}
		scs[i] = s
		insts[i] = core.Instance{Name: sh.name, Surface: s.Surface, Config: s.Config()}
	}

	results, err := eng.RunBatch(context.Background(), insts)
	if err != nil {
		log.Fatal(err)
	}
	for i, br := range results {
		s := scs[i]
		fmt.Printf("=== %s: output at %s (%d cells above the input) ===\n",
			br.Name, s.Output, shifts[i].rise)
		if br.Err != nil {
			log.Fatalf("%s deployment failed: %v", br.Name, br.Err)
		}
		if !br.Result.Success {
			log.Fatalf("%s deployment failed: %v", br.Name, br.Result)
		}
		fmt.Println(trace.Render(s.Surface, s.Input, s.Output))
		fmt.Printf("deployed with %d elections and %d block moves\n\n",
			br.Result.Rounds, br.Result.Hops)
	}

	fmt.Println("the same blocks served both layouts; a monolithic conveyor would have")
	fmt.Println("been replaced (paper §I: conveyors are designed for a fixed environment)")
}
