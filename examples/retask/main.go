// Retask: the flexibility pitch of the Smart Blocks project (§I). A classic
// monolithic conveyor must be replaced when the output point of the line
// changes; a modular surface simply rebuilds itself. This example runs the
// same initial blob against two different output points — the "morning
// shift" and the "afternoon shift" — and reports the cost of each
// deployment.
//
// (Rebuilding directly from a finished column is deliberately not shown:
// a bare 1-wide column is exactly the blocking shape Remark 1 warns about —
// blocks in a line have no lateral support and cannot restart. A real line
// would redeploy from the compact blob, as modelled here.)
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	// One session engine serves every deployment of the day.
	eng := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1))

	deploy := func(shift string, rise int) {
		// The same 12-block staircase blob each time.
		s, err := scenario.Staircase("blob", []int{5, 5, 2}, rise)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: output at %s (%d cells above the input) ===\n",
			shift, s.Output, rise)
		res, err := eng.Run(context.Background(), s.Surface, s.Config())
		if err != nil {
			log.Fatal(err)
		}
		if !res.Success {
			log.Fatalf("%s deployment failed: %v", shift, res)
		}
		fmt.Println(trace.Render(s.Surface, s.Input, s.Output))
		fmt.Printf("deployed with %d elections and %d block moves\n\n", res.Rounds, res.Hops)
	}

	// Morning: a short line.
	deploy("morning shift", 7)
	// Afternoon: the pick-up point moved three rows further.
	deploy("afternoon shift", 10)

	fmt.Println("the same blocks served both layouts; a monolithic conveyor would have")
	fmt.Println("been replaced (paper §I: conveyors are designed for a fixed environment)")
}
