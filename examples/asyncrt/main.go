// Asyncrt: the same BlockCode on real concurrency. The deterministic
// discrete-event simulator (the VisibleSim substitute) and the goroutine
// runtime — one goroutine per block, channels as the lateral ports of
// Fig. 8 — execute the identical program behind the same core.Engine
// session API; election winners are timing-independent by construction, so
// the two backends agree move for move.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/scenario"
)

func main() {
	lib := rules.StandardLibrary()
	ctx := context.Background()

	des, err := scenario.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	desRes, err := core.NewEngine(lib, core.WithSeed(1)).Run(ctx, des.Surface, des.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discrete-event backend: %v\n", desRes)

	async, err := scenario.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	asyncRes, err := core.NewEngine(lib, core.WithBackend(core.Async), core.WithSeed(1)).
		Run(ctx, async.Surface, async.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goroutine backend:      %v\n", asyncRes)

	if desRes.Hops != asyncRes.Hops || desRes.Rounds != asyncRes.Rounds {
		log.Fatal("backends disagree; timing leaked into the algorithm")
	}
	same := true
	for y := 0; y < des.Surface.Height(); y++ {
		for x := 0; x < des.Surface.Width(); x++ {
			if des.Surface.Occupied(geom.V(x, y)) != async.Surface.Occupied(geom.V(x, y)) {
				same = false
			}
		}
	}
	if !same {
		log.Fatal("final configurations differ")
	}
	fmt.Println("\nboth backends produced the identical move sequence and final surface:")
	fmt.Println("the algorithm's outcome is independent of message timing (Assumption 3")
	fmt.Println("only requires finite delays)")
}
