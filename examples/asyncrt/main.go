// Asyncrt: the same BlockCode on real concurrency. The deterministic
// discrete-event simulator (the VisibleSim substitute) and the goroutine
// runtime — one goroutine per block, channels as the lateral ports of
// Fig. 8 — execute the identical program; election winners are timing-
// independent by construction, so the two engines agree move for move.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/scenario"
)

func main() {
	lib := rules.StandardLibrary()

	des, err := scenario.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	desRes, err := core.Run(des.Surface, lib, des.Config(), core.RunParams{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discrete-event engine: %v\n", desRes)

	async, err := scenario.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	asyncRes, err := core.RunAsync(async.Surface, lib, async.Config(), core.AsyncParams{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goroutine runtime:     %v\n", asyncRes)

	if desRes.Hops != asyncRes.Hops || desRes.Rounds != asyncRes.Rounds {
		log.Fatal("engines disagree; timing leaked into the algorithm")
	}
	same := true
	for y := 0; y < des.Surface.Height(); y++ {
		for x := 0; x < des.Surface.Width(); x++ {
			if des.Surface.Occupied(geom.V(x, y)) != async.Surface.Occupied(geom.V(x, y)) {
				same = false
			}
		}
	}
	if !same {
		log.Fatal("final configurations differ")
	}
	fmt.Println("\nboth engines produced the identical move sequence and final surface:")
	fmt.Println("the algorithm's outcome is independent of message timing (Assumption 3")
	fmt.Println("only requires finite delays)")
}
