//go:build scale

package repro

// Large-N smoke benchmarks at the paper's §VI scale (~2e6 modules), kept
// behind the `scale` build tag so the default CI benchmark smoke stays
// fast. Run with:
//
//	go test -tags scale -bench LargeSurface -benchtime 1x -run xxx .
//
// They exercise the two paths the ROADMAP flags at this size: the lazy
// connectivity rebuild (rebuildConn's iterative Tarjan pass over the row
// bitsets) and the session layer's batch runner.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/rules"
	"repro/internal/scenario"
)

// largeSurfaceDims: 1500 x 1334 filled cells ≈ 2.0e6 modules on a surface
// with free headroom above (so motions have somewhere to go).
const (
	largeW      = 1500
	largeFillH  = 1334
	largeBlocks = largeW * largeFillH
)

var (
	largeOnce sync.Once
	largeSurf *lattice.Surface
	largeErr  error
)

// largeSurface builds the ~2e6-module surface once per process.
func largeSurface() (*lattice.Surface, error) {
	largeOnce.Do(func() {
		surf, err := lattice.NewSurface(largeW, largeFillH+6)
		if err != nil {
			largeErr = err
			return
		}
		for y := 0; y < largeFillH; y++ {
			for x := 0; x < largeW; x++ {
				if _, err := surf.Place(geom.V(x, y)); err != nil {
					largeErr = fmt.Errorf("place (%d,%d): %w", x, y, err)
					return
				}
			}
		}
		largeSurf = surf
	})
	return largeSurf, largeErr
}

// BenchmarkLargeSurfaceRebuildConn measures one full connectivity rebuild
// (component count + articulation bitset) over ~2e6 modules: the cost the
// lazy cache pays after an occupancy mutation invalidates it.
func BenchmarkLargeSurfaceRebuildConn(b *testing.B) {
	surf, err := largeSurface()
	if err != nil {
		b.Fatal(err)
	}
	top := geom.V(0, largeFillH) // a free cell laterally adjacent to the fill
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mutate to invalidate the cache, then force the rebuild.
		id, err := surf.Place(top)
		if err != nil {
			b.Fatal(err)
		}
		surf.WarmConnectivity()
		b.StopTimer()
		if err := surf.Remove(id); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(surf.NumBlocks()), "modules")
}

// BenchmarkLargeSurfaceValidate measures the per-candidate constrained
// verdict on the warmed 2e6-module cache: the number the incremental design
// must keep O(window) regardless of N.
func BenchmarkLargeSurfaceValidate(b *testing.B) {
	surf, err := largeSurface()
	if err != nil {
		b.Fatal(err)
	}
	lib := rules.StandardLibrary()
	// A rider block on the flat top of the fill can slide along it (support
	// everywhere below): the canonical mobile block of the rule system.
	pos := geom.V(largeW/2, largeFillH)
	id, err := surf.Place(pos)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := surf.Remove(id); err != nil {
			b.Fatal(err)
		}
	}()
	surf.WarmConnectivity()
	cons := lattice.Constraints{RequireConnectivity: true}
	apps, err := surf.ApplicationsFor(id, lib, cons)
	if err != nil || len(apps) == 0 {
		b.Fatalf("edge block has no constrained applications (err=%v)", err)
	}
	app := apps[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := surf.Validate(app, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeSurfaceBatch measures the session layer's batch runner on a
// §VI-style ensemble sweep: 16 independent tower instances fanned across
// the worker pool by one engine.
func BenchmarkLargeSurfaceBatch(b *testing.B) {
	eng := core.NewEngine(rules.StandardLibrary())
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		insts := make([]core.Instance, 16)
		for j := range insts {
			scs, err := scenario.TowerSweep([]int{48})
			if err != nil {
				b.Fatal(err)
			}
			insts[j] = core.Instance{
				Name: fmt.Sprintf("tower-48-%d", j), Surface: scs[0].Surface,
				Config: scs[0].Config(), Seed: int64(j + 1),
			}
		}
		b.StartTimer()
		brs, err := eng.RunBatch(context.Background(), insts)
		if err != nil {
			b.Fatal(err)
		}
		for _, br := range brs {
			if br.Err != nil || !br.Result.Success {
				b.Fatalf("%s: err=%v res=%v", br.Name, br.Err, br.Result)
			}
		}
	}
}
