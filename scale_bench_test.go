//go:build scale

package repro

// Large-N smoke benchmarks at the paper's §VI scale (5e5 to 8e6 modules),
// kept behind the `scale` build tag so the default CI benchmark smoke stays
// fast. Run with:
//
//	go test -tags scale -bench LargeSurface -benchtime 1x -run xxx .
//
// They exercise the paths the ROADMAP flags at this size: the lazy
// connectivity rebuild (monolithic vs column-band sharded), the per-event
// constrained verdict that must stay flat as the surface grows, and the
// session layer's batch runner. The sharded fixtures share the flatness
// geometry of the sbbench kernels: fixed fill height and band width, so a
// bigger surface means more bands, not bigger ones.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/rules"
	"repro/internal/scenario"
)

// largeSurfaceDims: 1500 x 1334 filled cells ≈ 2.0e6 modules on a surface
// with free headroom above (so motions have somewhere to go).
const (
	largeW      = 1500
	largeFillH  = 1334
	largeBlocks = largeW * largeFillH
)

var (
	largeOnce sync.Once
	largeSurf *lattice.Surface
	largeErr  error
)

// largeSurface builds the ~2e6-module surface once per process.
func largeSurface() (*lattice.Surface, error) {
	largeOnce.Do(func() {
		surf, err := lattice.NewSurface(largeW, largeFillH+6)
		if err != nil {
			largeErr = err
			return
		}
		if _, err := surf.FillRect(geom.RectSpanning(geom.V(0, 0), geom.V(largeW-1, largeFillH-1))); err != nil {
			largeErr = err
			return
		}
		largeSurf = surf
	})
	return largeSurf, largeErr
}

// BenchmarkLargeSurfaceRebuildConn measures one full connectivity rebuild
// (component count + articulation bitset) over ~2e6 modules: the cost the
// monolithic lazy cache pays after an occupancy mutation invalidates it.
func BenchmarkLargeSurfaceRebuildConn(b *testing.B) {
	surf, err := largeSurface()
	if err != nil {
		b.Fatal(err)
	}
	top := geom.V(0, largeFillH) // a free cell laterally adjacent to the fill
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mutate to invalidate the cache, then force the rebuild.
		id, err := surf.Place(top)
		if err != nil {
			b.Fatal(err)
		}
		surf.WarmConnectivity()
		b.StopTimer()
		if err := surf.Remove(id); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(surf.NumBlocks()), "modules")
}

// BenchmarkLargeSurfaceValidate measures the per-candidate constrained
// verdict on the warmed 2e6-module cache: the number the incremental design
// must keep O(window) regardless of N.
func BenchmarkLargeSurfaceValidate(b *testing.B) {
	surf, err := largeSurface()
	if err != nil {
		b.Fatal(err)
	}
	lib := rules.StandardLibrary()
	// A rider block on the flat top of the fill can slide along it (support
	// everywhere below): the canonical mobile block of the rule system.
	pos := geom.V(largeW/2, largeFillH)
	id, err := surf.Place(pos)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := surf.Remove(id); err != nil {
			b.Fatal(err)
		}
	}()
	surf.WarmConnectivity()
	cons := lattice.Constraints{RequireConnectivity: true}
	apps, err := surf.ApplicationsFor(id, lib, cons)
	if err != nil || len(apps) == 0 {
		b.Fatalf("edge block has no constrained applications (err=%v)", err)
	}
	app := apps[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := surf.Validate(app, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// Sharded flatness fixtures: height and band width fixed, width (= band
// count) grows. 750 cols ≈ 5e5 modules, 3000 ≈ 2e6, 12000 ≈ 8e6.
const (
	shardBenchH  = 667
	shardBenchBW = 150
)

var shardScales = []struct {
	label string
	cols  int
}{
	{"5e5", 750},
	{"2e6", 3000},
	{"8e6", 12000},
}

// shardBenchSurface fills cols x shardBenchH modules, shards the surface
// into cols/shardBenchBW bands, and returns it warmed with a rider block
// mid-band on the flat top.
func shardBenchSurface(b *testing.B, cols int) (*lattice.Surface, lattice.BlockID) {
	b.Helper()
	surf, err := lattice.NewSurface(cols, shardBenchH+6)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := surf.FillRect(geom.RectSpanning(geom.V(0, 0), geom.V(cols-1, shardBenchH-1))); err != nil {
		b.Fatal(err)
	}
	if err := surf.EnableSharding(cols / shardBenchBW); err != nil {
		b.Fatal(err)
	}
	mid := (cols/shardBenchBW/2)*shardBenchBW + shardBenchBW/2
	id, err := surf.Place(geom.V(mid, shardBenchH))
	if err != nil {
		b.Fatal(err)
	}
	surf.WarmConnectivity()
	return surf, id
}

// BenchmarkLargeSurfaceShardRebuild measures the cost the sharded cache
// pays after a mutation: one band rebuild plus the contraction recompute,
// at every scale of the sweep. Flat ns/op across the sub-benchmarks is the
// headline (the monolithic RebuildConn above grows linearly instead).
func BenchmarkLargeSurfaceShardRebuild(b *testing.B) {
	for _, sc := range shardScales {
		sc := sc
		b.Run(sc.label, func(b *testing.B) {
			surf, _ := shardBenchSurface(b, sc.cols)
			probe := geom.V(shardBenchBW/4, shardBenchH)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := surf.Place(probe)
				if err != nil {
					b.Fatal(err)
				}
				surf.WarmConnectivity()
				b.StopTimer()
				if err := surf.Remove(id); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(surf.NumBlocks()), "modules")
		})
	}
}

// BenchmarkLargeSurfaceShardValidate measures the per-event constrained
// verdict with a band dirtied before every op: the flat per-event cost of
// the issue's acceptance bar (ns/op within 25% across 5e5 -> 8e6).
func BenchmarkLargeSurfaceShardValidate(b *testing.B) {
	lib := rules.StandardLibrary()
	cons := lattice.Constraints{RequireConnectivity: true}
	for _, sc := range shardScales {
		sc := sc
		b.Run(sc.label, func(b *testing.B) {
			surf, id := shardBenchSurface(b, sc.cols)
			apps, err := surf.ApplicationsFor(id, lib, cons)
			if err != nil || len(apps) == 0 {
				b.Fatalf("rider has no constrained applications (err=%v)", err)
			}
			app := apps[0]
			probe := geom.V(shardBenchBW/4, shardBenchH)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pid, err := surf.Place(probe)
				if err != nil {
					b.Fatal(err)
				}
				if err := surf.Validate(app, cons); err != nil {
					b.Fatal(err)
				}
				if err := surf.Remove(pid); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(surf.NumBlocks()), "modules")
		})
	}
}

// BenchmarkLargeSurfaceBatch measures the session layer's batch runner on a
// §VI-style ensemble sweep: 16 independent tower instances fanned across
// the worker pool by one engine.
func BenchmarkLargeSurfaceBatch(b *testing.B) {
	eng := core.NewEngine(rules.StandardLibrary())
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		insts := make([]core.Instance, 16)
		for j := range insts {
			scs, err := scenario.TowerSweep([]int{48})
			if err != nil {
				b.Fatal(err)
			}
			insts[j] = core.Instance{
				Name: fmt.Sprintf("tower-48-%d", j), Surface: scs[0].Surface,
				Config: scs[0].Config(), Seed: int64(j + 1),
			}
		}
		b.StartTimer()
		brs, err := eng.RunBatch(context.Background(), insts)
		if err != nil {
			b.Fatal(err)
		}
		for _, br := range brs {
			if br.Err != nil || !br.Result.Success {
				b.Fatalf("%s: err=%v res=%v", br.Name, br.Err, br.Result)
			}
		}
	}
}
