package repro

import (
	"context"
	"testing"

	"repro/internal/convey"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
)

// TestSystemEndToEnd is the integration test across every layer: parse the
// rule library from its own XML serialisation (Fig. 7 format), build the
// Fig. 10 scenario, run the distributed algorithm on the deterministic
// engine, verify the path, and convey a batch of parts over it.
func TestSystemEndToEnd(t *testing.T) {
	// Rules through the XML codec: what a physical block would load.
	xml, err := rules.EncodeXML(rules.StandardLibrary())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rules.DecodeXML(xml)
	if err != nil {
		t.Fatal(err)
	}

	s, err := scenario.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewEngine(lib, core.WithSeed(1)).Run(context.Background(), s.Surface, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || !res.PathBuilt {
		t.Fatalf("reconfiguration failed: %v", res)
	}

	// A run with the XML-round-tripped library matches the built-in one.
	s2, err := scenario.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1)).
		Run(context.Background(), s2.Surface, s2.Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != res2.Hops || res.Rounds != res2.Rounds {
		t.Errorf("XML-loaded library diverged: %v vs %v", res, res2)
	}

	// Convey parts over the built conveyor.
	c, err := convey.New(s.Surface, s.Input, s.Output)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 20
	injected, delivered := 0, 0
	for tick := 0; delivered < batch && tick < 100*batch; tick++ {
		if injected < batch {
			if _, err := c.Inject(); err == nil {
				injected++
			}
		}
		delivered += len(c.Tick())
	}
	if delivered != batch {
		t.Fatalf("delivered %d of %d parts", delivered, batch)
	}
}

// TestSystemBothEngines: the DES and the goroutine runtime agree on the
// tower family too (not only Fig. 10).
func TestSystemBothEngines(t *testing.T) {
	scs, err := scenario.TowerSweep([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	des := scs[0]
	desRes, err := core.NewEngine(rules.StandardLibrary(), core.WithSeed(1)).
		Run(context.Background(), des.Surface, des.Config())
	if err != nil {
		t.Fatal(err)
	}
	scs2, err := scenario.TowerSweep([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	as := scs2[0]
	asRes, err := core.NewEngine(rules.StandardLibrary(), core.WithBackend(core.Async), core.WithSeed(2)).
		Run(context.Background(), as.Surface, as.Config())
	if err != nil {
		t.Fatal(err)
	}
	if !desRes.Success || !asRes.Success {
		t.Fatalf("engine failure: des=%v async=%v", desRes, asRes)
	}
	if desRes.Hops != asRes.Hops {
		t.Errorf("hops differ across engines: %d vs %d", desRes.Hops, asRes.Hops)
	}
}
