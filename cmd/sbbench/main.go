// Command sbbench regenerates the paper's evaluation artefacts: every
// table, figure, remark and lemma has an experiment that reruns its
// workload and prints the measured rows next to the paper's claims. The
// per-experiment index lives in DESIGN.md §4; the recorded
// measured-vs-paper outcomes live in EXPERIMENTS.md.
//
// Usage:
//
//	sbbench -list            list the experiments
//	sbbench -exp fig10       run one experiment
//	sbbench -exp all         run the full evaluation
//	sbbench -json            measure the hot-path kernels, write BENCH_10.json
//	sbbench -json -scale     add the 5e5/8e6 sharded flatness kernels
//
// -cpuprofile/-memprofile write pprof profiles of the measured work, so a
// regression flagged by benchdiff can be drilled into without a separate
// harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the experiments")
		exp      = flag.String("exp", "", "experiment id, or 'all'")
		jsonMode = flag.Bool("json", false, "emit a machine-readable bench record")
		// The default tracks the current PR number (BENCH_<N>.json is the
		// per-PR trajectory convention CI's bench gate diffs against).
		jsonOut    = flag.String("o", "BENCH_10.json", "output path for -json")
		scale      = flag.Bool("scale", false, "include the 5e5/8e6 sharded flatness kernels in -json (slow, hundreds of MB)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			}
		}()
	}

	if *jsonMode {
		data, err := experiments.RunBenchJSONWith(experiments.BenchOpts{Scale: *scale})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: bench failed: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	if *list {
		fmt.Printf("%-12s %s\n", "ID", "PAPER ARTEFACT")
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Paper)
		}
		fmt.Printf("\n%-14s %s\n", "SCENARIO", "GENERATOR (shared registry: CLIs, examples, sbserver)")
		for _, g := range scenario.Generators() {
			params := ""
			for i, p := range g.Params {
				if i > 0 {
					params += ","
				}
				params += fmt.Sprintf("%s=%d", p.Name, p.Default)
			}
			if params != "" {
				params = " [" + params + "]"
			}
			fmt.Printf("%-14s %s%s\n", g.Name, g.Doc, params)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sbbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}
	failed := 0
	for _, e := range toRun {
		fmt.Printf("==> %s — %s\n\n", e.ID, e.Paper)
		out, err := e.Run()
		fmt.Println(out)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "sbbench: %s FAILED: %v\n\n", e.ID, err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sbbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
