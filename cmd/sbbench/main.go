// Command sbbench regenerates the paper's evaluation artefacts: every
// table, figure, remark and lemma has an experiment that reruns its
// workload and prints the measured rows next to the paper's claims. The
// per-experiment index lives in DESIGN.md §4; the recorded
// measured-vs-paper outcomes live in EXPERIMENTS.md.
//
// Usage:
//
//	sbbench -list            list the experiments
//	sbbench -exp fig10       run one experiment
//	sbbench -exp all         run the full evaluation
//	sbbench -json            measure the hot-path kernels, write BENCH_4.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the experiments")
		exp      = flag.String("exp", "", "experiment id, or 'all'")
		jsonMode = flag.Bool("json", false, "emit a machine-readable bench record")
		// The default tracks the current PR number (BENCH_<N>.json is the
		// per-PR trajectory convention CI's bench gate diffs against).
		jsonOut = flag.String("o", "BENCH_4.json", "output path for -json")
	)
	flag.Parse()

	if *jsonMode {
		data, err := experiments.RunBenchJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: bench failed: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	if *list {
		fmt.Printf("%-12s %s\n", "ID", "PAPER ARTEFACT")
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sbbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}
	failed := 0
	for _, e := range toRun {
		fmt.Printf("==> %s — %s\n\n", e.ID, e.Paper)
		out, err := e.Run()
		fmt.Println(out)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "sbbench: %s FAILED: %v\n\n", e.ID, err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sbbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
