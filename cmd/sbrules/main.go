// Command sbrules inspects the block-motion capability system of §IV: the
// event codes of Table I, the validation truth table of Table II, the
// standard rule library (the two base rules of Fig. 7 closed under symmetry
// and rotation), and its XML serialisation.
//
// Usage:
//
//	sbrules -table1            print Table I (event codes)
//	sbrules -table2            print Table II (truth table)
//	sbrules -list              list the standard library
//	sbrules -show NAME         print one rule's Motion Matrix and moves
//	sbrules -dump FILE         write the standard library as XML
//	sbrules -load FILE         parse + validate an XML capability file
//	sbrules -paper             print the paper's Fig. 7 XML extract
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/event"
	"repro/internal/rules"
	"repro/internal/stats"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table I")
		table2 = flag.Bool("table2", false, "print Table II")
		list   = flag.Bool("list", false, "list the standard library")
		show   = flag.String("show", "", "print one rule")
		dump   = flag.String("dump", "", "write the standard library as XML to FILE")
		load   = flag.String("load", "", "parse and validate an XML capability FILE")
		paper  = flag.Bool("paper", false, "print the paper's Fig. 7 XML extract")
	)
	flag.Parse()
	ran := false

	if *table1 {
		ran = true
		t := stats.NewTable("Table I — codes associated to the different events",
			"Code", "Context", "Case")
		for c := event.Code(0); c < event.NumCodes; c++ {
			t.AddRow(int(c), c.Context(), c.Case())
		}
		fmt.Print(t)
	}
	if *table2 {
		ran = true
		t := stats.NewTable("Table II — truth table for validation of block motion",
			"Presence\\Motion", "0", "1", "2", "3", "4", "5")
		tt := event.TruthTable()
		for p := 0; p < 2; p++ {
			row := []any{p}
			for m := 0; m < event.NumCodes; m++ {
				row = append(row, tt[p][m])
			}
			t.AddRow(row...)
		}
		fmt.Print(t)
	}
	lib := rules.StandardLibrary()
	if *list {
		ran = true
		t := stats.NewTable(fmt.Sprintf("standard library (%d capabilities)", lib.Len()),
			"name", "size", "movers", "carrying")
		for _, r := range lib.Rules() {
			t.AddRow(r.Name, fmt.Sprintf("%dx%d", r.MM.Size(), r.MM.Size()),
				len(r.Movers()), r.IsCarrying())
		}
		fmt.Print(t)
	}
	if *show != "" {
		ran = true
		r, ok := lib.Get(*show)
		if !ok {
			fail(fmt.Errorf("unknown rule %q (try -list)", *show))
		}
		fmt.Printf("%s\nmotion matrix:\n%smoves:\n", r, r.MM)
		for _, m := range r.Moves {
			fmt.Printf("  %s\n", m)
		}
	}
	if *dump != "" {
		ran = true
		data, err := rules.EncodeXML(lib)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*dump, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d capabilities to %s (%d bytes)\n", lib.Len(), *dump, len(data))
	}
	if *load != "" {
		ran = true
		data, err := os.ReadFile(*load)
		if err != nil {
			fail(err)
		}
		got, err := rules.DecodeXML(data)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d capabilities, all valid\n", *load, got.Len())
		for _, r := range got.Rules() {
			fmt.Printf("  %s\n", r)
		}
	}
	if *paper {
		ran = true
		fmt.Print(rules.PaperXMLExtract)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sbrules:", err)
	os.Exit(1)
}
