// Command benchdiff compares two sbbench records (BENCH_N.json) and fails
// when a hot-path kernel regressed beyond the tolerated percentage. CI runs
// it against the previous main-branch artifact so performance regressions
// surface on the pull request that introduces them (ROADMAP: perf
// trajectory gate).
//
// Usage:
//
//	benchdiff -old prev/BENCH_1.json -new BENCH_2.json -max-regress 10
//
// Kernels are matched by name; kernels present in only one record are
// reported but never fail the gate (new kernels appear, old ones retire).
// End-to-end kernels listed in -skip (default fig10_reconfiguration) are
// reported without gating: single-shot wall-clock times are too noisy for
// a percentage threshold on shared CI runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func load(path string) (map[string]experiments.BenchResult, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rec experiments.BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]experiments.BenchResult, len(rec.Results))
	var order []string
	for _, r := range rec.Results {
		out[r.Name] = r
		order = append(order, r.Name)
	}
	return out, order, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "previous bench record (baseline)")
		newPath    = flag.String("new", "", "current bench record")
		maxRegress = flag.Float64("max-regress", 10, "tolerated slowdown of a gated kernel, percent")
		skip       = flag.String("skip", "fig10_reconfiguration", "comma-separated kernels reported but not gated")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldRes, _, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newRes, newOrder, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	ungated := map[string]bool{}
	for _, n := range strings.Split(*skip, ",") {
		if n = strings.TrimSpace(n); n != "" {
			ungated[n] = true
		}
	}

	failed := 0
	fmt.Printf("%-36s %14s %14s %9s\n", "KERNEL", "OLD ns/op", "NEW ns/op", "DELTA")
	for _, name := range newOrder {
		nw := newRes[name]
		ol, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-36s %14s %14.1f %9s\n", name, "-", nw.NsPerOp, "new")
			continue
		}
		delta := (nw.NsPerOp - ol.NsPerOp) / ol.NsPerOp * 100
		verdict := ""
		switch {
		case ungated[name]:
			verdict = "(not gated)"
		case delta > *maxRegress:
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("%-36s %14.1f %14.1f %+8.1f%% %s\n", name, ol.NsPerOp, nw.NsPerOp, delta, verdict)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%-36s %14.1f %14s %9s\n", name, oldRes[name].NsPerOp, "-", "retired")
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d kernel(s) regressed more than %.0f%% (label the PR bench-regression-ok to override)\n", failed, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no gated kernel regressed more than %.0f%%\n", *maxRegress)
}
