// Command benchdiff compares two sbbench records (BENCH_N.json) and fails
// when a hot-path kernel regressed beyond the tolerated percentage. CI runs
// it against the previous main-branch artifact so performance regressions
// surface on the pull request that introduces them (ROADMAP: perf
// trajectory gate).
//
// Usage:
//
//	benchdiff -old prev/BENCH_1.json -new BENCH_2.json -max-regress 10
//
// Kernels are matched by name; kernels present in only one record are
// reported but never fail the gate (new kernels appear, old ones retire).
// End-to-end kernels listed in -skip (default: the reconfiguration runs)
// are reported without ns/op gating: single-shot wall-clock times are too
// noisy for a percentage threshold on shared CI runners.
//
// Kernels carrying a Metric (block moves, rounds-to-completion,
// moves-per-round) are additionally gated on the metric itself — metrics
// are deterministic DES counts, immune to runner noise, so they are gated
// even for -skip kernels. Metrics regress by growing, except those listed
// in -metric-asc (e.g. moves_per_round_k4), which regress by shrinking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func load(path string) (map[string]experiments.BenchResult, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rec experiments.BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]experiments.BenchResult, len(rec.Results))
	var order []string
	for _, r := range rec.Results {
		out[r.Name] = r
		order = append(order, r.Name)
	}
	return out, order, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "previous bench record (baseline)")
		newPath    = flag.String("new", "", "current bench record")
		maxRegress = flag.Float64("max-regress", 10, "tolerated slowdown of a gated kernel, percent")
		skip       = flag.String("skip",
			"fig10_reconfiguration,rounds_to_completion_serial,rounds_to_completion_k4,moves_per_round_k4,ridge_rounds_to_completion_k4,ridge_serial_rounds_budget,rounds_to_completion_k16,moves_per_round_k16,server_throughput_32c,server_phase_enqueue,server_phase_flush,server_phase_run,server_phase_respond,server_cache_hot,server_slo_p95,gate_affinity_hot,gate_drain_zero_loss",
			"comma-separated kernels whose ns/op is reported but not gated (metrics still gate)")
		metricAsc = flag.String("metric-asc", "moves_per_round_k4,moves_per_round_k16,server_throughput_32c,server_cache_hot,server_slo_p95,gate_affinity_hot,gate_drain_zero_loss",
			"comma-separated kernels whose metric regresses by shrinking instead of growing")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldRes, _, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newRes, newOrder, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	ungated := map[string]bool{}
	for _, n := range strings.Split(*skip, ",") {
		if n = strings.TrimSpace(n); n != "" {
			ungated[n] = true
		}
	}
	asc := map[string]bool{}
	for _, n := range strings.Split(*metricAsc, ",") {
		if n = strings.TrimSpace(n); n != "" {
			asc[n] = true
		}
	}

	failed := 0
	fmt.Printf("%-36s %14s %14s %9s\n", "KERNEL", "OLD ns/op", "NEW ns/op", "DELTA")
	for _, name := range newOrder {
		nw := newRes[name]
		ol, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-36s %14s %14.1f %9s\n", name, "-", nw.NsPerOp, "new")
			continue
		}
		delta := (nw.NsPerOp - ol.NsPerOp) / ol.NsPerOp * 100
		verdict := ""
		switch {
		case ungated[name]:
			verdict = "(not gated)"
		case delta > *maxRegress:
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("%-36s %14.1f %14.1f %+8.1f%% %s\n", name, ol.NsPerOp, nw.NsPerOp, delta, verdict)
		// Deterministic metric gate: both records must carry the metric.
		if ol.Metric != 0 && nw.Metric != 0 {
			mDelta := (nw.Metric - ol.Metric) / ol.Metric * 100
			mVerdict := ""
			if asc[name] {
				if mDelta < -*maxRegress {
					mVerdict = "METRIC REGRESSED"
					failed++
				}
			} else if mDelta > *maxRegress {
				mVerdict = "METRIC REGRESSED"
				failed++
			}
			fmt.Printf("%-36s %14.2f %14.2f %+8.1f%% %s\n",
				"  metric:"+nw.MetricName, ol.Metric, nw.Metric, mDelta, mVerdict)
		}
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%-36s %14.1f %14s %9s\n", name, oldRes[name].NsPerOp, "-", "retired")
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d kernel(s) regressed more than %.0f%% (label the PR bench-regression-ok to override)\n", failed, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no gated kernel regressed more than %.0f%%\n", *maxRegress)
}
