// Command sbload is the closed-loop load generator for sbserver: N client
// workers each issue sequential scenario-run requests, read the full
// NDJSON event stream of every run, and the aggregate — runs/sec,
// completion counts per priority class, cache hit tallies (from the
// X-Cache header), latency percentiles — prints as one JSON report.
// The same kernel (internal/server.RunLoad against an in-process server)
// backs the server_* bench entries of BENCH_10.json.
//
// The workload shape is tunable: -zipf-n spreads requests over N seed
// variants of the spec drawn Zipf-skewed (a hot head exercising the result
// cache, a cold tail missing it), -bulk-frac demotes that fraction of
// requests to ?class=bulk, and -cache bypass forces every request to run
// on the engine.
//
// Point -url at a cmd/sbgate gateway and the report's per_target section
// (keyed by the X-Replica response header) shows how spec affinity
// partitioned the load; point -targets at the replicas directly and the
// same load is spread round-robin instead — the affinity-blind baseline.
//
// Usage:
//
//	sbload -url http://localhost:8080 -clients 32 -per-client 8 \
//	       -scenario fig10 [-param top=12 ...] [-k 4] [-backend des] \
//	       [-zipf-n 64 -zipf-s 1.5] [-bulk-frac 0.25] [-cache bypass] \
//	       [-targets http://127.0.0.1:8081,http://127.0.0.1:8082]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/scenario"
	"repro/internal/server"
)

// paramFlags collects repeated -param name=value pairs.
type paramFlags struct{ p scenario.Params }

func (f *paramFlags) String() string { return fmt.Sprint(f.p) }

func (f *paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	if f.p == nil {
		f.p = scenario.Params{}
	}
	f.p[name] = v
	return nil
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "sbserver (or sbgate) base URL")
		targets   = flag.String("targets", "", "comma-separated base URLs, round-robined directly (bypasses -url; the affinity-blind baseline to compare a gateway against)")
		clients   = flag.Int("clients", 32, "concurrent closed-loop clients")
		perClient = flag.Int("per-client", 8, "sequential requests per client")
		scen      = flag.String("scenario", "fig10", "scenario generator name")
		k         = flag.Int("k", 0, "parallel-moves batch width (0 = serial)")
		shards    = flag.Int("shards", 0, "surface shard bands (0 = unsharded)")
		seed      = flag.Int64("seed", 0, "per-run seed override (0 = server default)")
		backend   = flag.String("backend", "", "engine backend: des (default) or async")
		class     = flag.String("class", "", "priority class for every request: interactive (default) or bulk")
		bulkFrac  = flag.Float64("bulk-frac", 0, "fraction of requests demoted to ?class=bulk")
		zipfN     = flag.Int("zipf-n", 0, "spread load over N Zipf-distributed seed variants (0 = one spec)")
		zipfS     = flag.Float64("zipf-s", 1.5, "Zipf skew exponent (> 1; higher = hotter head)")
		cacheMode = flag.String("cache", "", "cache mode query: bypass to force engine runs")
		params    paramFlags
	)
	flag.Var(&params, "param", "scenario parameter name=value (repeatable)")
	flag.Parse()

	var targetList []string
	for _, u := range strings.Split(*targets, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targetList = append(targetList, u)
		}
	}

	rep, err := server.RunLoad(context.Background(), server.LoadConfig{
		BaseURL:   *url,
		Targets:   targetList,
		Clients:   *clients,
		PerClient: *perClient,
		Spec: server.RunSpec{
			Scenario: *scen,
			Params:   params.p,
			K:        *k,
			Shards:   *shards,
			Seed:     *seed,
			Backend:  *backend,
		},
		Class:        *class,
		BulkFraction: *bulkFrac,
		ZipfN:        *zipfN,
		ZipfS:        *zipfS,
		CacheMode:    *cacheMode,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbload: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
