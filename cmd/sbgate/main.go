// Command sbgate is the horizontal service tier: a streaming reverse
// proxy that fronts N sbserver replicas and routes each run request by
// spec affinity — the request body is canonicalized with the replicas'
// own cache-key function and consistent-hashed onto a virtual-node ring,
// so identical (and equivalently-spelled) specs always land on the same
// replica and the fleet's cache capacity partitions instead of
// duplicating. The gateway health-checks the fleet, takes draining
// replicas out of rotation while their in-flight streams finish, retries
// refused deterministic runs on the ring successor (zero request loss on
// scale-down), and tags successors with X-Peer-Probe so a replica can
// adopt a warm recording from its neighbour instead of re-running the
// engine. GET /metrics serves the fleet-merged observability document:
// replica phase histograms summed bucket-wise (exact, the layout is
// fixed) plus per-replica routing counters.
//
// Usage:
//
//	sbgate -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	       [-addr :8080] [-vnodes 64] [-seed 1] [-health 500ms]
//	       [-peer-probe]
//
// Clients talk to sbgate exactly as they would to one sbserver — same
// routes, same stream framings, same headers — plus an X-Replica header
// naming which replica served each response.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gate"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		replicas  = flag.String("replicas", "", "comma-separated sbserver base URLs (required)")
		vnodes    = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		seed      = flag.Int64("seed", 1, "replicas' base seed (folded into routing keys)")
		health    = flag.Duration("health", 500*time.Millisecond, "replica health-check cadence")
		peerProbe = flag.Bool("peer-probe", true, "attach X-Peer-Probe headers (cross-replica cache peering)")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	g, err := gate.New(gate.Config{
		Replicas:       urls,
		VNodes:         *vnodes,
		Seed:           *seed,
		HealthInterval: *health,
		PeerProbe:      *peerProbe,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbgate: %v\n", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sbgate: listening on %s over %d replicas (vnodes=%d health=%v peering=%v)\n",
		*addr, len(urls), *vnodes, *health, *peerProbe)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sbgate: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sbgate: %v — shutting down\n", sig)
	}

	// The gateway holds no run state: stop routing, let in-flight proxied
	// streams finish briefly, done. Replica drains are the replicas' own.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = httpSrv.Close()
	}
	g.Close()
	fmt.Fprintln(os.Stderr, "sbgate: stopped")
}
