// Command sbserver serves reconfiguration-as-a-service: scenario-run
// requests from concurrent clients are coalesced into Engine.RunBatch
// dispatches and their observer event streams are answered live over
// NDJSON or SSE. Deterministic (DES) runs are memoized in a
// content-addressed result cache and concurrent identical requests share
// one engine run (singleflight); every response says how it was served in
// its X-Cache header. With -slo set, an AIMD admission controller adapts
// the pending-request limit to keep the run-phase p95 within the target,
// shedding overload as 429s, with the bulk class (?class=bulk) degrading
// first. See internal/server for the service itself and
// cmd/sbserver/README.md for a curl quickstart.
//
// Usage:
//
//	sbserver [-addr :8080] [-batch 8] [-batch-wait 2ms] [-queue 64]
//	         [-workers 0] [-seed 1] [-drain 10s] [-slo 0]
//	         [-cache-bytes 67108864] [-bulk-share 0.5] [-peer-probe]
//
// With -peer-probe (on by default), a replica running behind cmd/sbgate
// honours the gateway's X-Peer-Probe header: on an engine-path cache miss
// it first asks the named peer's /v1/peek for the recording, adopting a
// warm result instead of re-running the engine — the mechanism behind
// lossless drain hand-offs and scale-in cache warm-up.
//
// SIGINT/SIGTERM starts a graceful shutdown: new requests are refused
// with 503 while in-flight runs get -drain to finish; whatever is still
// running then is force-cancelled (the engine leaves every surface
// connected and rolled back to an atomic motion boundary).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		batch     = flag.Int("batch", 8, "coalescing batch size (requests per RunBatch dispatch)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max wait for a short batch to fill")
		queue     = flag.Int("queue", 64, "admission queue capacity (overflow answers 429)")
		workers   = flag.Int("workers", 0, "RunBatch worker pool width (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "engine base seed (per-request seeds override)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		slo       = flag.Duration("slo", 0, "target p95 for the interactive run phase (0 = static admission)")
		cacheB    = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (negative disables)")
		bulkShare = flag.Float64("bulk-share", 0.5, "fraction of the admission limit the bulk class may use")
		peerProbe = flag.Bool("peer-probe", true, "honour X-Peer-Probe headers (cache peering behind sbgate)")
		peerTO    = flag.Duration("peer-timeout", 750*time.Millisecond, "per peer-probe budget")
	)
	flag.Parse()

	s := server.New(server.Config{
		BatchSize: *batch,
		BatchWait: *batchWait,
		QueueCap:  *queue,
		Workers:   *workers,
		Seed:      *seed,
		SLO:       *slo,
		CacheBytes: func() int64 {
			if *cacheB == 0 {
				return -1 // flag 0 means "no cache", Config 0 means "default"
			}
			return *cacheB
		}(),
		BulkShare:   *bulkShare,
		PeerProbe:   *peerProbe,
		PeerTimeout: *peerTO,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sbserver: listening on %s (batch=%d wait=%v queue=%d slo=%v cache=%dB)\n",
		*addr, *batch, *batchWait, *queue, *slo, *cacheB)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sbserver: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sbserver: %v — draining for up to %v\n", sig, *drain)
	}

	// Drain the service first (503 on new work, in-flight runs finish or
	// are force-cancelled at the deadline), then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sbserver: force-cancelled in-flight runs: %v\n", err)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "sbserver: stopped")
}
