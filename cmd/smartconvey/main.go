// Command smartconvey runs a Smart Blocks reconfiguration end to end: it
// builds a scenario, executes the distributed algorithm on the chosen
// engine, renders the Fig. 10/11-style storyboard, and optionally conveys
// micro-parts along the built path.
//
// Usage:
//
//	smartconvey [flags]
//
//	-scenario fig10|tower:N|stair:H1,H2,...|slope:TOP|ridge
//	                                         instance to run (default fig10)
//	-rise N                                  path rise for stair/slope scenarios
//	-engine des|async                        execution backend (default des)
//	-parallel K                              elect up to K non-interfering blocks
//	                                         per round (default 1 = the paper's
//	                                         serial protocol)
//	-seed N                                  random seed (default 1)
//	-timeout D                               wall-clock bound (e.g. 30s; 0 = backend
//	                                         default: none for des, 60s for async)
//	-frames                                  print a frame after every motion
//	-json FILE                               write the recorded run as JSON
//	-parts N                                 convey N parts after building
//	-quiet                                   result line only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/convey"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		scen     = flag.String("scenario", "fig10", "fig10 | tower:N | stair:H1,H2,... | slope:TOP | ridge")
		rise     = flag.Int("rise", 0, "path rise for stair/slope scenarios (default: blocks-2 / TOP+6)")
		engine   = flag.String("engine", "des", "des (deterministic) | async (goroutines)")
		parallel = flag.Int("parallel", 1, "election batch width K (1 = serial paper protocol)")
		seed     = flag.Int64("seed", 1, "random seed")
		timeout  = flag.Duration("timeout", 0, "wall-clock bound (0 = backend default: none for des, 60s for async)")
		frames   = flag.Bool("frames", false, "print a frame after every motion")
		jsonF    = flag.String("json", "", "write the recorded run to this file")
		svgF     = flag.String("svg", "", "write the final state as SVG to this file")
		parts    = flag.Int("parts", 0, "convey N parts along the built path")
		quiet    = flag.Bool("quiet", false, "result line only")
	)
	flag.Parse()

	s, err := scenario.Parse(*scen, *rise)
	if err != nil {
		fail(err)
	}
	if !*quiet {
		fmt.Printf("scenario %s: %d blocks, I=%s, O=%s, path %d cells\n",
			s.Name, s.Surface.NumBlocks(), s.Input, s.Output, s.Input.Manhattan(s.Output)+1)
		fmt.Println("initial configuration:")
		fmt.Println(trace.Render(s.Surface, s.Input, s.Output))
	}

	rec := trace.NewRecorder(s.Surface, s.Input, s.Output, *frames)
	opts := []core.Option{core.WithSeed(*seed), core.WithObserver(rec)}
	if *parallel > 1 {
		opts = append(opts, core.WithParallelMoves(*parallel))
	}
	switch *engine {
	case "des":
		// DES is the default backend.
	case "async":
		opts = append(opts, core.WithBackend(core.Async))
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		opts = append(opts, core.WithTimeout(*timeout))
	}
	eng := core.NewEngine(rules.StandardLibrary(), opts...)
	res, err := eng.Run(ctx, s.Surface, s.Config())
	if err != nil {
		fail(err)
	}

	if *frames {
		for _, st := range rec.Steps() {
			fmt.Printf("step %d: %s\n%s\n", st.Index, st.Rule, st.Frame)
		}
	}
	if !*quiet {
		fmt.Println("final configuration:")
		fmt.Println(trace.Render(s.Surface, s.Input, s.Output))
	}
	fmt.Println(res)

	if *jsonF != "" {
		data, err := rec.JSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonF, data, 0o644); err != nil {
			fail(err)
		}
		if !*quiet {
			fmt.Printf("run written to %s (%d steps)\n", *jsonF, len(rec.Steps()))
		}
	}

	if *svgF != "" {
		if err := os.WriteFile(*svgF, []byte(trace.SVG(s.Surface, s.Input, s.Output)), 0o644); err != nil {
			fail(err)
		}
		if !*quiet {
			fmt.Printf("final state written to %s\n", *svgF)
		}
	}

	if *parts > 0 {
		if !res.Success {
			fail(fmt.Errorf("cannot convey: reconfiguration failed"))
		}
		c, err := convey.New(s.Surface, s.Input, s.Output)
		if err != nil {
			fail(err)
		}
		injected, delivered := 0, 0
		for tick := 0; delivered < *parts; tick++ {
			if injected < *parts {
				if _, err := c.Inject(); err == nil {
					injected++
				}
			}
			delivered += len(c.Tick())
			if tick > 10*(*parts)+10*c.PathLength() {
				fail(fmt.Errorf("conveying stalled at %d/%d", delivered, *parts))
			}
		}
		fmt.Printf("conveyed %d parts over %d cells in %d ticks (steady-state 1 part/tick)\n",
			delivered, c.PathLength(), c.Ticks())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "smartconvey:", err)
	os.Exit(1)
}
